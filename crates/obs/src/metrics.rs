//! The metrics registry: counters, gauges, and fixed log₂-bucket
//! histograms with `Arc`'d-atomic handles (hot-path updates are a relaxed
//! `fetch_add`, no allocation, no lock), plus the serializable
//! [`MetricsSnapshot`] with Prometheus-text and JSON encoders.
//!
//! Two scopes exist:
//!
//! * **Registries** ([`Registry`]) — explicit instances; the service layer
//!   keeps one per rank ([`rank_registry`]) so a worker's
//!   `MetricsReport` is genuinely per-worker (each worker *process* of a
//!   TCP mesh has its own globals anyway; in-process ranks get their own
//!   registry by construction).
//! * **Hot counters** ([`hot`]) — one process-wide, statically-allocated
//!   block for the prover's innermost loops, where even a registry-handle
//!   field would be invasive. Guarded by its own single relaxed atomic
//!   load; disabled (the default) the guard is the entire cost.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds zero values, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)` — every `u64` maps to exactly one.
pub const HISTO_BUCKETS: usize = 65;

// ---------------------------------------------------------------------------
// Handles.
// ---------------------------------------------------------------------------

/// A monotone counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (an `f64` stored as bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The fixed-bucket histogram storage (see [`HISTO_BUCKETS`]). Public so
/// [`hot`] can embed one statically.
#[derive(Debug)]
pub struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histo {
    /// An empty histogram (const, so it can back a `static`).
    pub const fn new() -> Histo {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histo {
            buckets: [ZERO; HISTO_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `v`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one observation — three relaxed `fetch_add`s, nothing else.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical observations of `v` in one update (the
    /// weighted form sampled recorders use: one sampled event stands for
    /// `n` real ones, so count and sum stay unbiased in expectation).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Snapshot of the non-empty buckets.
    pub fn load(&self) -> MetricValue {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u8, n));
            }
        }
        MetricValue::Histogram {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zeroes everything (test isolation for the static [`hot`] block).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl Default for Histo {
    fn default() -> Histo {
        Histo::new()
    }
}

/// A histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<Histo>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histo>),
}

/// A named collection of metrics. Cloning shares the underlying storage.
/// Registration (name lookup) takes a lock and may allocate; the returned
/// handles never do either.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    slots: Arc<Mutex<BTreeMap<String, Slot>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter `name`. Panics if `name` is already
    /// registered as a different kind (a wiring bug, not a runtime
    /// condition).
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().expect("registry lock");
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
        {
            Slot::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Gets or creates the gauge `name` (panics on a kind clash).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().expect("registry lock");
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        {
            Slot::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Gets or creates the histogram `name` (panics on a kind clash).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = self.slots.lock().expect("registry lock");
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Histogram(Arc::new(Histo::new())))
        {
            Slot::Histogram(h) => Histogram(Arc::clone(h)),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A sorted, serializable snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().expect("registry lock");
        let entries = slots
            .iter()
            .map(|(name, slot)| MetricEntry {
                name: name.clone(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Slot::Histogram(h) => h.load(),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Total registered metrics (tests).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("registry lock").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-rank registry map: get-or-create the [`Registry`] for `rank`.
/// In-process ranks share the process but not the registry; worker
/// processes of a TCP mesh naturally hold only their own rank's entry.
pub fn rank_registry(rank: usize) -> Registry {
    let mut map = rank_registries().lock().expect("rank registry lock");
    map.entry(rank).or_default().clone()
}

/// Drops every per-rank registry (test isolation between service runs in
/// one process).
pub fn reset_rank_registries() {
    rank_registries()
        .lock()
        .expect("rank registry lock")
        .clear();
}

fn rank_registries() -> &'static Mutex<BTreeMap<usize, Registry>> {
    static MAP: Mutex<BTreeMap<usize, Registry>> = Mutex::new(BTreeMap::new());
    &MAP
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// One metric's value in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(f64),
    /// Log₂-bucket histogram: only non-empty buckets are carried, as
    /// `(bucket index, count)` with the index meaning of
    /// [`Histo::bucket_of`].
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Non-empty `(bucket, count)` pairs, bucket-ascending.
        buckets: Vec<(u8, u64)>,
    },
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Metric name, optionally with `{label="value"}` suffix.
    pub name: String,
    /// The value.
    pub value: MetricValue,
}

/// A sorted, serializable view of a registry (what `MetricsReport`
/// carries over the wire and `Service::metrics` returns).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Entries, name-ascending.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from loose entries (sorts by name).
    pub fn from_entries(mut entries: Vec<MetricEntry>) -> MetricsSnapshot {
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { entries }
    }

    /// Looks up one entry by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// The counter value of `name`, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// The gauge value of `name`, or 0.0.
    pub fn gauge(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` lines grouped per base name; histograms expand to
    /// cumulative `_bucket{le=…}` samples plus `_sum`/`_count`).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for e in &self.entries {
            let base = e.name.split('{').next().unwrap_or(&e.name);
            match &e.value {
                MetricValue::Counter(n) => {
                    if !typed.contains(&base) {
                        typed.push(base);
                        let _ = writeln!(out, "# TYPE {base} counter");
                    }
                    let _ = writeln!(out, "{} {n}", e.name);
                }
                MetricValue::Gauge(v) => {
                    if !typed.contains(&base) {
                        typed.push(base);
                        let _ = writeln!(out, "# TYPE {base} gauge");
                    }
                    let _ = writeln!(out, "{} {v}", e.name);
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    if !typed.contains(&base) {
                        typed.push(base);
                        let _ = writeln!(out, "# TYPE {base} histogram");
                    }
                    let mut cumulative = 0u64;
                    for (bucket, n) in buckets {
                        cumulative += n;
                        // Bucket `i ≥ 1` holds [2^(i-1), 2^i); its inclusive
                        // upper bound is 2^i − 1. Bucket 0 holds exactly 0.
                        let le = if *bucket == 0 {
                            0u64
                        } else {
                            (1u64 << bucket).wrapping_sub(1)
                        };
                        let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{base}_sum {sum}");
                    let _ = writeln!(out, "{base}_count {count}");
                }
            }
        }
        out
    }

    /// Renders the snapshot as a deterministic JSON object (the `metrics`
    /// block `bench_prover` embeds in `BENCH_prover.json`). `indent` is
    /// the number of leading spaces on each line.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&inner);
            crate::json::escape_into(&e.name, &mut out);
            out.push_str(": ");
            match &e.value {
                MetricValue::Counter(n) => {
                    let _ = write!(out, "{n}");
                }
                MetricValue::Gauge(v) => {
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = write!(out, "{{ \"count\": {count}, \"sum\": {sum}, \"buckets\": [");
                    for (j, (bucket, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{bucket}, {n}]");
                    }
                    out.push_str("] }");
                }
            }
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&pad);
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------------
// Process-wide prover hot counters.
// ---------------------------------------------------------------------------

/// Statically-allocated counters for the prover's innermost loops, behind
/// a single relaxed-load sampling guard. Process-wide by design: the
/// deduction kernels have no rank identity (worker processes of a TCP mesh
/// are one rank per process anyway; in-process meshes aggregate all ranks
/// here — documented, and still the actionable signal: probe selectivity
/// and kernel occupancy are engine properties, not rank properties).
pub mod hot {
    use super::{Histo, MetricEntry, MetricValue};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static POSTING_PROBE_HITS: AtomicU64 = AtomicU64::new(0);
    static POSTING_PROBE_MISSES: AtomicU64 = AtomicU64::new(0);
    static ALL_GROUND_KERNEL: AtomicU64 = AtomicU64::new(0);
    static BATCH_OCCUPANCY: Histo = Histo::new();
    // Sampling ratio: record every Nth event, weight-scaled by N so the
    // exported totals stay unbiased. 1 (the default) records everything
    // and never touches TICK — exact counts, unchanged behavior.
    static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
    static TICK: AtomicU64 = AtomicU64::new(0);

    /// Is hot-counter sampling on? One relaxed load — the entire cost of
    /// every instrumentation site while sampling is off.
    #[inline(always)]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns sampling on. If `P2MDIE_HOT_SAMPLE` is set to an integer N,
    /// the sampling ratio is taken from it (record every Nth event,
    /// weighted by N); unset or unparsable leaves the ratio as configured
    /// (default 1 = record everything).
    pub fn enable() {
        if let Ok(s) = std::env::var("P2MDIE_HOT_SAMPLE") {
            if let Ok(n) = s.trim().parse::<u64>() {
                set_sample_every(n);
            }
        }
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns sampling off.
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Sets the sampling ratio: record every `every`-th event, scaling
    /// each recorded event by `every` so totals remain unbiased in
    /// expectation. 0 is clamped to 1 (record everything, exact).
    pub fn set_sample_every(every: u64) {
        SAMPLE_EVERY.store(every.max(1), Ordering::Relaxed);
    }

    /// The current sampling ratio.
    pub fn sample_every() -> u64 {
        SAMPLE_EVERY.load(Ordering::Relaxed)
    }

    /// The weight of this event if it is sampled, `None` if it is skipped.
    /// At ratio 1 this is branch-only (no tick traffic); at ratio N every
    /// Nth event across all hot sites is recorded with weight N.
    #[inline(always)]
    fn sample_weight() -> Option<u64> {
        let every = SAMPLE_EVERY.load(Ordering::Relaxed);
        if every <= 1 {
            return Some(1);
        }
        let t = TICK.fetch_add(1, Ordering::Relaxed);
        t.is_multiple_of(every).then_some(every)
    }

    /// A posting-list probe found a run.
    #[inline(always)]
    pub fn posting_probe_hit() {
        if enabled() {
            if let Some(w) = sample_weight() {
                POSTING_PROBE_HITS.fetch_add(w, Ordering::Relaxed);
            }
        }
    }

    /// A posting-list probe found nothing.
    #[inline(always)]
    pub fn posting_probe_miss() {
        if enabled() {
            if let Some(w) = sample_weight() {
                POSTING_PROBE_MISSES.fetch_add(w, Ordering::Relaxed);
            }
        }
    }

    /// The all-ground stripe-compare kernel ran once.
    #[inline(always)]
    pub fn all_ground_kernel() {
        if enabled() {
            if let Some(w) = sample_weight() {
                ALL_GROUND_KERNEL.fetch_add(w, Ordering::Relaxed);
            }
        }
    }

    /// A goal batch of `goals` entries was planned in one posting pass.
    #[inline(always)]
    pub fn batch_occupancy(goals: usize) {
        if enabled() {
            if let Some(w) = sample_weight() {
                BATCH_OCCUPANCY.record_n(goals as u64, w);
            }
        }
    }

    /// Zeroes every hot counter and the sampling tick (test isolation;
    /// the enabled flag and sampling ratio are untouched).
    pub fn reset() {
        POSTING_PROBE_HITS.store(0, Ordering::Relaxed);
        POSTING_PROBE_MISSES.store(0, Ordering::Relaxed);
        ALL_GROUND_KERNEL.store(0, Ordering::Relaxed);
        BATCH_OCCUPANCY.reset();
        TICK.store(0, Ordering::Relaxed);
    }

    /// The hot counters as snapshot entries (merged into metric reports).
    pub fn entries() -> Vec<MetricEntry> {
        vec![
            MetricEntry {
                name: "prover_posting_probe_hits_total".to_owned(),
                value: MetricValue::Counter(POSTING_PROBE_HITS.load(Ordering::Relaxed)),
            },
            MetricEntry {
                name: "prover_posting_probe_misses_total".to_owned(),
                value: MetricValue::Counter(POSTING_PROBE_MISSES.load(Ordering::Relaxed)),
            },
            MetricEntry {
                name: "prover_all_ground_kernel_total".to_owned(),
                value: MetricValue::Counter(ALL_GROUND_KERNEL.load(Ordering::Relaxed)),
            },
            MetricEntry {
                name: "prover_batch_occupancy".to_owned(),
                value: BATCH_OCCUPANCY.load(),
            },
        ]
    }

    /// Sum of events recorded so far (zero-overhead tests assert this
    /// stays 0 while sampling is off).
    pub fn total_recorded() -> u64 {
        let histo = match BATCH_OCCUPANCY.load() {
            MetricValue::Histogram { count, .. } => count,
            _ => 0,
        };
        POSTING_PROBE_HITS.load(Ordering::Relaxed)
            + POSTING_PROBE_MISSES.load(Ordering::Relaxed)
            + ALL_GROUND_KERNEL.load(Ordering::Relaxed)
            + histo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_snapshot_sorted() {
        let reg = Registry::new();
        reg.counter("b_total").add(3);
        reg.gauge("a_depth").set(2.5);
        let h = reg.histogram("c_sizes");
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a_depth", "b_total", "c_sizes"]);
        assert_eq!(snap.counter("b_total"), 3);
        assert_eq!(snap.gauge("a_depth"), 2.5);
        assert_eq!(
            snap.get("c_sizes"),
            Some(&MetricValue::Histogram {
                count: 4,
                sum: 11,
                buckets: vec![(0, 1), (1, 1), (3, 2)],
            })
        );
    }

    #[test]
    fn handles_share_storage_and_reregistration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("jobs_total{class=\"coverage\"}").add(2);
        reg.counter("jobs_total{class=\"learn\"}").inc();
        reg.gauge("queue_depth").set(4.0);
        let h = reg.histogram("batch");
        h.record(3);
        h.record(9);
        let text = reg.snapshot().prometheus();
        assert!(text.contains("# TYPE jobs_total counter\n"), "{text}");
        assert!(text.contains("jobs_total{class=\"coverage\"} 2\n"));
        assert!(text.contains("jobs_total{class=\"learn\"} 1\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 4\n"));
        assert!(text.contains("# TYPE batch histogram\n"));
        // 3 lands in bucket 2 (le 3), 9 in bucket 4 (le 15); cumulative.
        assert!(text.contains("batch_bucket{le=\"3\"} 1\n"), "{text}");
        assert!(text.contains("batch_bucket{le=\"15\"} 2\n"), "{text}");
        assert!(text.contains("batch_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("batch_sum 12\n"));
        assert!(text.contains("batch_count 2\n"));
        // The TYPE line appears exactly once per family.
        assert_eq!(text.matches("# TYPE jobs_total").count(), 1);
    }

    #[test]
    fn json_encoding_is_deterministic() {
        let reg = Registry::new();
        reg.counter("n").add(7);
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(2);
        let a = reg.snapshot().to_json(2);
        let b = reg.snapshot().to_json(2);
        assert_eq!(a, b);
        assert!(a.contains("\"n\": 7"));
        assert!(a.contains("\"g\": 1.5"));
        assert!(a.contains("\"h\": { \"count\": 1, \"sum\": 2, \"buckets\": [[2, 1]] }"));
        // It must parse as JSON (the bench file embeds it verbatim).
        crate::json::parse(&a).expect("valid JSON");
    }

    /// The hot counters are process-wide statics, so tests that flip the
    /// guard or the sampling ratio must not interleave.
    fn hot_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn hot_counters_gate_on_the_sampling_guard() {
        let _guard = hot_lock();
        hot::disable();
        hot::set_sample_every(1);
        hot::reset();
        hot::posting_probe_hit();
        hot::all_ground_kernel();
        hot::batch_occupancy(8);
        assert_eq!(hot::total_recorded(), 0, "disabled guard records nothing");
        hot::enable();
        hot::posting_probe_hit();
        hot::posting_probe_miss();
        hot::batch_occupancy(8);
        assert_eq!(hot::total_recorded(), 3);
        let snap = MetricsSnapshot::from_entries(hot::entries());
        assert_eq!(snap.counter("prover_posting_probe_hits_total"), 1);
        assert_eq!(snap.counter("prover_posting_probe_misses_total"), 1);
        hot::disable();
        hot::reset();
    }

    /// At ratio N every Nth event is recorded with weight N, so exported
    /// totals equal the true event count whenever it is a multiple of N —
    /// deterministic here because the tick is reset and events are serial.
    #[test]
    fn sampled_hot_counters_are_weight_scaled() {
        let _guard = hot_lock();
        hot::disable();
        hot::set_sample_every(4);
        hot::reset();
        hot::enable();
        for _ in 0..8 {
            hot::posting_probe_hit();
        }
        // Ticks 0..8: ticks 0 and 4 sample, each with weight 4.
        let snap = MetricsSnapshot::from_entries(hot::entries());
        assert_eq!(snap.counter("prover_posting_probe_hits_total"), 8);
        // The histogram records weighted too: ticks 8..12, tick 8 samples.
        for _ in 0..4 {
            hot::batch_occupancy(3);
        }
        match MetricsSnapshot::from_entries(hot::entries())
            .get("prover_batch_occupancy")
            .cloned()
        {
            Some(MetricValue::Histogram { count, sum, .. }) => {
                assert_eq!(count, 4);
                assert_eq!(sum, 12);
            }
            other => panic!("missing histogram: {other:?}"),
        }
        assert_eq!(hot::sample_every(), 4);
        hot::disable();
        hot::set_sample_every(1);
        hot::reset();
    }

    #[test]
    fn bucket_of_covers_the_u64_range() {
        assert_eq!(Histo::bucket_of(0), 0);
        assert_eq!(Histo::bucket_of(1), 1);
        assert_eq!(Histo::bucket_of(2), 2);
        assert_eq!(Histo::bucket_of(3), 2);
        assert_eq!(Histo::bucket_of(4), 3);
        assert_eq!(Histo::bucket_of(u64::MAX), 64);
    }
}
