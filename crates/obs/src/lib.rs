//! Flight recorder for the p²-mdie cluster: structured tracing, a metrics
//! registry, and the encoders that turn both into standard tool formats.
//!
//! This crate is the workspace's in-repo equivalent of `tracing` +
//! `metrics` + `tracing-chrome` (the build environment has no crates.io
//! access — see `shims/README.md`), deliberately **std-only** so every
//! layer of the system can depend on it without widening the offline shim
//! set.
//!
//! # Span model
//!
//! A [`trace::Tracer`] is a copyable per-rank handle. When tracing is off
//! (the default) every call is a single relaxed atomic load and an early
//! return — no events, no allocation, no lock. When a session is on
//! ([`trace::start`]), ranks emit:
//!
//! * **spans** — explicit guards opened with [`trace::Tracer::span`] (or
//!   the [`span!`] macro) and closed with an explicit virtual-time stamp
//!   ([`trace::Span::end`]); unclosed guards close themselves on drop at
//!   their opening time, so a panic path never leaves an orphan `B` event;
//! * **events** — instantaneous, structured key/value points
//!   ([`trace::Tracer::event`] / the [`event!`] macro).
//!
//! Events land in per-rank ring buffers drained by a background writer
//! thread (JSONL streaming when a path is configured); [`trace::finish`]
//! joins the writer and returns the whole [`export::Trace`].
//!
//! # Virtual time vs wall time
//!
//! Every record carries **two clocks**: the rank's *virtual* time (the
//! LogP-style simulated clock the paper's tables are computed on — the
//! caller passes it explicitly, typically `Endpoint::now()`) and the *wall*
//! nanoseconds since the session started. Virtual time is the deterministic
//! axis: two runs with the same seed produce byte-identical span trees on
//! it, and multi-process traces Lamport-merge into one coherent timeline
//! because the merged clock values travel inside the protocol frames. Wall
//! time is diagnostic only — it is kept out of the Chrome export so that
//! file stays bit-reproducible.
//!
//! # Chrome trace format
//!
//! [`export::Trace::chrome_json`] renders the classic `trace_event` JSON
//! (`{"traceEvents": [...]}` with `B`/`E`/`i` phases, `ts` in virtual
//! microseconds, `tid` = rank), loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev). [`export::validate_chrome`] parses
//! it back and checks every `E` nests under a matching `B` per rank — the
//! CI trace-smoke gate.
//!
//! # Metrics
//!
//! [`metrics::Registry`] holds counters, gauges, and fixed log₂-bucket
//! histograms — handles are `Arc`'d atomics, so the hot path is a relaxed
//! `fetch_add` with **no allocation** (names are interned once at
//! registration). [`metrics::MetricsSnapshot`] is the sorted, serializable
//! view: [`metrics::MetricsSnapshot::prometheus`] renders the Prometheus
//! text exposition format, [`metrics::MetricsSnapshot::to_json`] the
//! machine-readable block `bench_prover` embeds in `BENCH_prover.json`.
//! Process-wide prover hot-path counters live in [`metrics::hot`], guarded
//! by their own single relaxed atomic load ([`metrics::hot::enabled`]).

pub mod export;
mod json;
pub mod metrics;
pub mod trace;

pub use export::{validate_chrome, Trace};
pub use metrics::{MetricEntry, MetricValue, MetricsSnapshot, Registry};
pub use trace::{Event, Phase, Span, Tracer, Value};

/// Opens a span through a [`trace::Tracer`]: `span!(tracer, "name", vt,
/// key = value, ...)`. Returns a [`trace::Span`] guard; close it with an
/// explicit virtual-time stamp ([`trace::Span::end`]).
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr, $vt:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $tracer.span($name, $vt, &[$((stringify!($k), $crate::Value::from($v))),*])
    };
}

/// Emits an instantaneous structured event: `event!(tracer, "name", vt,
/// key = value, ...)`.
#[macro_export]
macro_rules! event {
    ($tracer:expr, $name:expr, $vt:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $tracer.event($name, $vt, &[$((stringify!($k), $crate::Value::from($v))),*])
    };
}
