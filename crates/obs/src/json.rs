//! A minimal JSON reader, just big enough to load back the JSONL/Chrome
//! files this crate writes (multi-process trace merging and the CI
//! trace-smoke validation). Hand-rolled because the workspace is offline
//! (no `serde_json`); strict where it matters (structure, escapes,
//! numbers), no attempt at full spec corners like `\u` surrogate pairs
//! beyond the BMP-by-escape forms we emit.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub(crate) fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed, nothing
/// else).
pub(crate) fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", char::from(c), self.i))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            m.insert(key, self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(m));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(a));
        }
        loop {
            self.ws();
            a.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(a));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".to_owned());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input came in as a
                    // &str and we only ever advance by whole scalars or
                    // ASCII bytes, so the remainder is valid UTF-8.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "string crosses a utf8 boundary")?;
                    let ch = rest.chars().next().ok_or("utf8")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

/// Escapes `s` into `out` as a JSON string literal (quotes included).
pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let v = parse(r#"{"a": [1, -2.5, "x\ny", true, null], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[JsonValue]>::len),
            Some(5)
        );
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_f64),
            Some(300.0)
        );
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_roundtrips() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
