//! The tracing core: per-rank ring buffers, the writer thread, and the
//! zero-cost-when-disabled [`Tracer`] handle.
//!
//! See the [crate docs](crate) for the span model and the two time axes.
//! The design constraints, in order:
//!
//! 1. **Disabled is free.** Every emit site starts with one relaxed load
//!    of a global flag; when it is `false` nothing else runs — no lock,
//!    no allocation, no clock read.
//! 2. **Enabled is deterministic.** Records are keyed to the caller's
//!    virtual time and a per-rank sequence number; the final ordering
//!    (`sort by (vtime, rank, seq)`) depends only on protocol decisions,
//!    never on thread scheduling, so same-seed runs produce byte-identical
//!    timelines. Per-rank virtual clocks are monotone, which makes that
//!    sort order preserve each rank's emission order (span nesting
//!    survives).
//! 3. **Producers never block on I/O.** Ranks push into their own ring
//!    buffer; a background writer thread drains all rings on a short
//!    cadence (streaming JSONL when a path is configured). Rings grow
//!    past [`RING_SOFT_CAP`] rather than dropping records — losing events
//!    under load would make the timeline timing-dependent, violating (2);
//!    the overflow is surfaced in [`TraceSummary::ring_overflows`]
//!    instead.

use crate::export::Trace;
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Number of per-rank ring buffers a session allocates. Ranks at or above
/// the cap share the last ring (their records stay correctly rank-tagged;
/// only the sequence counter is shared, so same-virtual-time ordering
/// between two such ranks is not pinned). The paper runs p ≤ 8; this cap
/// exists so a session is a fixed allocation, not a growing map.
pub const RING_COUNT: usize = 256;

/// Per-ring soft capacity: the writer thread normally drains long before
/// this; a producer that outruns it grows the buffer (determinism beats
/// boundedness) and bumps the session's overflow counter.
pub const RING_SOFT_CAP: usize = 8192;

/// How often the writer thread drains the rings.
const FLUSH_INTERVAL: Duration = Duration::from_millis(20);

/// Is a trace session active? One relaxed atomic load — this is the whole
/// cost of every instrumentation site while tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn session_slot() -> &'static Mutex<Option<Arc<Shared>>> {
    static SLOT: Mutex<Option<Arc<Shared>>> = Mutex::new(None);
    &SLOT
}

// ---------------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------------

/// A structured field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (virtual times, ratios).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(Cow<'static, str>),
}

macro_rules! value_from {
    ($($t:ty => $v:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::$v(x as $cast)
            }
        }
    )*};
}
value_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

impl From<&'static str> for Value {
    fn from(x: &'static str) -> Value {
        Value::Str(Cow::Borrowed(x))
    }
}

impl From<String> for Value {
    fn from(x: String) -> Value {
        Value::Str(Cow::Owned(x))
    }
}

/// Event phase, mirroring the Chrome `trace_event` phases the exporter
/// emits (`B`egin / `E`nd for spans, `i`nstant for point events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span open.
    Begin,
    /// Span close.
    End,
    /// Instantaneous event.
    Instant,
}

/// One trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Emitting rank (Chrome `tid`).
    pub rank: u32,
    /// Per-rank emission sequence number — the deterministic tiebreak for
    /// records at the same virtual time.
    pub seq: u64,
    /// Virtual time, seconds (the deterministic axis; always ≥ 0).
    pub vt: f64,
    /// Wall nanoseconds since the session started (diagnostic only; kept
    /// out of the Chrome export so it stays bit-reproducible).
    pub wall_ns: u64,
    /// Span open / span close / instant.
    pub phase: Phase,
    /// Record name.
    pub name: Cow<'static, str>,
    /// Structured fields.
    pub args: Vec<(Cow<'static, str>, Value)>,
}

// ---------------------------------------------------------------------------
// The session.
// ---------------------------------------------------------------------------

/// Configuration for one trace session.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    /// Stream records to this JSONL file as they are drained (append
    /// order; re-sorted on load). `None` keeps everything in memory until
    /// [`finish`].
    pub jsonl_path: Option<PathBuf>,
    /// Sampling ratio for the prover hot counters
    /// ([`crate::metrics::hot`]): `Some(n)` applies
    /// [`set_sample_every(n)`](crate::metrics::hot::set_sample_every)
    /// when the session starts — every `n`-th event recorded, weighted by
    /// `n`. `None` (the default) leaves the configured ratio untouched.
    pub hot_sample: Option<u64>,
}

struct Ring {
    buf: Mutex<Vec<Event>>,
    seq: AtomicU64,
}

struct Shared {
    start: Instant,
    rings: Vec<Ring>,
    ring_overflows: AtomicU64,
    stop: Mutex<bool>,
    wake: Condvar,
    collected: Mutex<Vec<Event>>,
    jsonl: Mutex<Option<BufWriter<File>>>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Counters describing how a finished session behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Times a producer found its ring past [`RING_SOFT_CAP`] (records
    /// were kept regardless; this only flags that the writer fell behind).
    pub ring_overflows: u64,
}

impl Shared {
    fn drain_rings(&self) {
        let mut drained: Vec<Event> = Vec::new();
        for ring in &self.rings {
            let mut buf = ring.buf.lock().expect("ring lock");
            if !buf.is_empty() {
                drained.append(&mut buf);
            }
        }
        if drained.is_empty() {
            return;
        }
        if let Some(w) = self.jsonl.lock().expect("jsonl lock").as_mut() {
            let mut line = String::new();
            for ev in &drained {
                line.clear();
                crate::export::jsonl_line(ev, &mut line);
                line.push('\n');
                let _ = w.write_all(line.as_bytes());
            }
        }
        self.collected
            .lock()
            .expect("collected lock")
            .append(&mut drained);
    }
}

fn writer_loop(shared: Arc<Shared>) {
    let mut stopped = shared.stop.lock().expect("stop lock");
    loop {
        if *stopped {
            break;
        }
        let (guard, _) = shared
            .wake
            .wait_timeout(stopped, FLUSH_INTERVAL)
            .expect("writer wait");
        stopped = guard;
        drop(stopped);
        shared.drain_rings();
        stopped = shared.stop.lock().expect("stop lock");
    }
    drop(stopped);
    shared.drain_rings();
    if let Some(w) = shared.jsonl.lock().expect("jsonl lock").as_mut() {
        let _ = w.flush();
    }
}

/// Starts a trace session. Returns `false` (and does nothing) when one is
/// already active — sessions are process-global, exactly one at a time.
pub fn start(cfg: TraceConfig) -> bool {
    let mut slot = session_slot().lock().expect("session lock");
    if slot.is_some() {
        return false;
    }
    if let Some(n) = cfg.hot_sample {
        crate::metrics::hot::set_sample_every(n);
    }
    let jsonl = cfg
        .jsonl_path
        .as_ref()
        .and_then(|p| File::create(p).ok())
        .map(BufWriter::new);
    let mut rings = Vec::with_capacity(RING_COUNT);
    rings.resize_with(RING_COUNT, || Ring {
        buf: Mutex::new(Vec::new()),
        seq: AtomicU64::new(0),
    });
    let shared = Arc::new(Shared {
        start: Instant::now(),
        rings,
        ring_overflows: AtomicU64::new(0),
        stop: Mutex::new(false),
        wake: Condvar::new(),
        collected: Mutex::new(Vec::new()),
        jsonl: Mutex::new(jsonl),
        writer: Mutex::new(None),
    });
    let for_writer = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name("p2mdie-obs-writer".to_owned())
        .spawn(move || writer_loop(for_writer))
        .expect("spawn trace writer");
    *shared.writer.lock().expect("writer lock") = Some(handle);
    *slot = Some(shared);
    ENABLED.store(true, Ordering::Release);
    true
}

/// Ends the active session: disables emission, joins the writer thread,
/// drains everything, and returns the sorted [`Trace`] (plus a summary).
/// Returns `None` when no session was active.
pub fn finish() -> Option<(Trace, TraceSummary)> {
    let shared = {
        let mut slot = session_slot().lock().expect("session lock");
        ENABLED.store(false, Ordering::Release);
        slot.take()?
    };
    {
        let mut stopped = shared.stop.lock().expect("stop lock");
        *stopped = true;
        shared.wake.notify_all();
    }
    if let Some(h) = shared.writer.lock().expect("writer lock").take() {
        let _ = h.join();
    }
    // The writer's exit path already drained and flushed; a late producer
    // racing `finish` could still have pushed, so drain once more.
    shared.drain_rings();
    if let Some(w) = shared.jsonl.lock().expect("jsonl lock").as_mut() {
        let _ = w.flush();
    }
    let events = std::mem::take(&mut *shared.collected.lock().expect("collected lock"));
    let mut trace = Trace { events };
    trace.sort();
    let summary = TraceSummary {
        ring_overflows: shared.ring_overflows.load(Ordering::Relaxed),
    };
    Some((trace, summary))
}

#[inline]
fn emit(rank: u32, phase: Phase, name: &'static str, vt: f64, args: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    let shared = {
        let slot = session_slot().lock().expect("session lock");
        match slot.as_ref() {
            Some(s) => Arc::clone(s),
            None => return,
        }
    };
    let ring = &shared.rings[(rank as usize).min(RING_COUNT - 1)];
    let seq = ring.seq.fetch_add(1, Ordering::Relaxed);
    let wall_ns = shared.start.elapsed().as_nanos() as u64;
    let ev = Event {
        rank,
        seq,
        vt,
        wall_ns,
        phase,
        name: Cow::Borrowed(name),
        args: args
            .iter()
            .map(|(k, v)| (Cow::Borrowed(*k), v.clone()))
            .collect(),
    };
    let mut buf = ring.buf.lock().expect("ring lock");
    if buf.len() >= RING_SOFT_CAP {
        shared.ring_overflows.fetch_add(1, Ordering::Relaxed);
    }
    buf.push(ev);
    drop(buf);
    shared.wake.notify_all();
}

// ---------------------------------------------------------------------------
// Handles.
// ---------------------------------------------------------------------------

/// A copyable per-rank tracing handle. All methods are no-ops (one relaxed
/// atomic load) while no session is active.
#[derive(Clone, Copy, Debug)]
pub struct Tracer {
    rank: u32,
}

impl Tracer {
    /// The handle for one rank (rank 0 = master).
    pub const fn for_rank(rank: usize) -> Tracer {
        Tracer { rank: rank as u32 }
    }

    /// The rank this handle tags records with.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Is tracing currently on? Exposed so call sites can skip argument
    /// construction entirely on the hot path.
    #[inline(always)]
    pub fn on(&self) -> bool {
        enabled()
    }

    /// Emits an instantaneous structured event at virtual time `vt`.
    #[inline]
    pub fn event(&self, name: &'static str, vt: f64, args: &[(&'static str, Value)]) {
        emit(self.rank, Phase::Instant, name, vt, args);
    }

    /// Opens a span at virtual time `vt`. Close it with [`Span::end`]
    /// (passing the closing virtual time); a dropped guard closes at its
    /// opening time so panics never leave an orphan open span.
    #[inline]
    pub fn span(&self, name: &'static str, vt: f64, args: &[(&'static str, Value)]) -> Span {
        let armed = enabled();
        if armed {
            emit(self.rank, Phase::Begin, name, vt, args);
        }
        Span {
            rank: self.rank,
            name,
            open_vt: vt,
            armed,
        }
    }
}

/// An open span guard (see [`Tracer::span`]). The close event is only
/// emitted when the open event was — a session enabled mid-span never sees
/// a dangling `E`.
#[derive(Debug)]
pub struct Span {
    rank: u32,
    name: &'static str,
    open_vt: f64,
    armed: bool,
}

impl Span {
    /// Closes the span at virtual time `vt`.
    pub fn end(self, vt: f64) {
        self.end_with(vt, &[]);
    }

    /// Closes the span at virtual time `vt` with closing fields (Chrome
    /// shows them on the `E` event).
    pub fn end_with(mut self, vt: f64, args: &[(&'static str, Value)]) {
        if self.armed {
            self.armed = false;
            emit(self.rank, Phase::End, self.name, vt.max(self.open_vt), args);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            emit(self.rank, Phase::End, self.name, self.open_vt, &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_chrome;

    // Trace sessions are process-global; tests that open one must not
    // overlap. (Integration suites get a process each; unit tests here
    // share one.)
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        assert!(!enabled());
        let t = Tracer::for_rank(3);
        t.event("never", 1.0, &[("k", Value::U64(1))]);
        let sp = t.span("never", 1.0, &[]);
        sp.end(2.0);
        assert!(finish().is_none(), "no session was active");
    }

    #[test]
    fn session_collects_sorts_and_nests() {
        let _g = lock();
        assert!(start(TraceConfig::default()));
        assert!(!start(TraceConfig::default()), "second start refused");
        let m = Tracer::for_rank(0);
        let w = Tracer::for_rank(1);
        let outer = m.span("epoch", 0.0, &[("epoch", Value::U64(1))]);
        let inner = m.span("gather", 0.5, &[]);
        crate::event!(w, "recv", 0.25, from = 0u32, bytes = 16u64);
        inner.end(1.0);
        outer.end_with(2.0, &[("accepted", Value::U64(3))]);
        let (trace, summary) = finish().expect("session was active");
        assert_eq!(summary.ring_overflows, 0);
        assert_eq!(trace.events.len(), 5);
        // Sorted by (vt, rank, seq): epoch B, recv, gather B, gather E,
        // epoch E.
        let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, ["epoch", "recv", "gather", "gather", "epoch"]);
        validate_chrome(&trace.chrome_json()).expect("spans nest");
    }

    #[test]
    fn dropped_span_closes_itself() {
        let _g = lock();
        assert!(start(TraceConfig::default()));
        let t = Tracer::for_rank(2);
        {
            let _sp = t.span("abandoned", 1.5, &[]);
            // Dropped without an explicit end — e.g. a panic path.
        }
        let (trace, _) = finish().expect("session");
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].phase, Phase::Begin);
        assert_eq!(trace.events[1].phase, Phase::End);
        assert_eq!(trace.events[1].vt, 1.5);
        validate_chrome(&trace.chrome_json()).expect("self-closed span nests");
    }

    #[test]
    fn jsonl_streaming_roundtrips() {
        let _g = lock();
        let path =
            std::env::temp_dir().join(format!("p2mdie-obs-test-{}.jsonl", std::process::id()));
        assert!(start(TraceConfig {
            jsonl_path: Some(path.clone()),
            hot_sample: None,
        }));
        let t = Tracer::for_rank(1);
        let sp = t.span("work", 0.5, &[("n", Value::U64(7))]);
        sp.end(1.5);
        t.event("note", 2.0, &[("msg", Value::from("done"))]);
        let (trace, _) = finish().expect("session");
        let text = std::fs::read_to_string(&path).expect("jsonl written");
        let reloaded = Trace::from_jsonl(&text).expect("jsonl parses");
        assert_eq!(reloaded.events, trace.events);
        let _ = std::fs::remove_file(&path);
    }
}
