//! Predictive accuracy of an induced theory on held-out examples.
//!
//! An example is predicted positive when at least one theory clause covers
//! it (head unifies, body provable from the background knowledge).
//! Accuracy is the percentage of correctly classified examples — the
//! quantity of the paper's Table 6.

use p2mdie_ilp::bitset::Bitset;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_logic::clause::Clause;

/// Confusion counts of a theory on an example set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Positives covered (true positives).
    pub tp: usize,
    /// Positives missed (false negatives).
    pub fn_: usize,
    /// Negatives covered (false positives).
    pub fp: usize,
    /// Negatives rejected (true negatives).
    pub tn: usize,
}

impl Confusion {
    /// Accuracy in percent (the paper reports percentages).
    pub fn accuracy_pct(&self) -> f64 {
        let total = self.tp + self.fn_ + self.fp + self.tn;
        if total == 0 {
            return 0.0;
        }
        100.0 * (self.tp + self.tn) as f64 / total as f64
    }
}

/// Scores `theory` on `examples` using `engine`'s background knowledge and
/// proof limits.
pub fn score_theory(engine: &IlpEngine, theory: &[Clause], examples: &Examples) -> Confusion {
    let mut cp = Bitset::new(examples.num_pos());
    let mut cn = Bitset::new(examples.num_neg());
    for clause in theory {
        let cov = engine.evaluate(clause, examples, None, None);
        cp.union_with(&cov.pos);
        cn.union_with(&cov.neg);
    }
    Confusion {
        tp: cp.count(),
        fn_: examples.num_pos() - cp.count(),
        fp: cn.count(),
        tn: examples.num_neg() - cn.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_ilp::modes::ModeSet;
    use p2mdie_ilp::settings::Settings;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    fn setup() -> (SymbolTable, IlpEngine, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=10i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
        }
        let modes = ModeSet::parse(&t, "tgt(+num)", &[(1, "even(+num)")]).unwrap();
        let engine = IlpEngine::new(kb, modes, Settings::default());
        let tgt = t.intern("tgt");
        let ex = Examples::new(
            vec![2, 4, 6]
                .into_iter()
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            vec![3, 5]
                .into_iter()
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        (t, engine, ex)
    }

    #[test]
    fn perfect_theory_scores_100() {
        let (t, engine, ex) = setup();
        let theory = vec![Clause::new(
            Literal::new(t.intern("tgt"), vec![Term::Var(0)]),
            vec![Literal::new(t.intern("even"), vec![Term::Var(0)])],
        )];
        let c = score_theory(&engine, &theory, &ex);
        assert_eq!(
            c,
            Confusion {
                tp: 3,
                fn_: 0,
                fp: 0,
                tn: 2
            }
        );
        assert!((c.accuracy_pct() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_theory_predicts_all_negative() {
        let (_, engine, ex) = setup();
        let c = score_theory(&engine, &[], &ex);
        assert_eq!(c.tp, 0);
        assert_eq!(c.tn, 2);
        assert!((c.accuracy_pct() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn overgeneral_theory_pays_on_negatives() {
        let (t, engine, ex) = setup();
        let theory = vec![Clause::fact(Literal::new(
            t.intern("tgt"),
            vec![Term::Var(0)],
        ))];
        let c = score_theory(&engine, &theory, &ex);
        assert_eq!(c.tp, 3);
        assert_eq!(c.fp, 2);
        assert!((c.accuracy_pct() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn empty_example_set_is_zero() {
        let (_, engine, _) = setup();
        let c = score_theory(&engine, &[], &Examples::default());
        assert_eq!(c.accuracy_pct(), 0.0);
    }
}
