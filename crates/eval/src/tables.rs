//! Renders the sweep results as the paper's Tables 1–6 (ASCII).

use crate::stats::{mean, stddev};
use crate::sweep::{RunSeries, SweepResults};
use crate::ttest::paired_ttest;
use std::fmt::Write as _;

/// Renders a fixed-width ASCII table.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let rule = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{}-", "-".repeat(*w));
        }
        let _ = writeln!(out, "+");
    };
    let line = |out: &mut String, cells: &[String]| {
        for (i, w) in widths.iter().enumerate().take(ncols) {
            let empty = String::new();
            let c = cells.get(i).unwrap_or(&empty);
            let _ = write!(out, "| {c:>w$} ");
        }
        let _ = writeln!(out, "|");
    };
    rule(&mut out);
    line(&mut out, header);
    rule(&mut out);
    for row in rows {
        line(&mut out, row);
    }
    rule(&mut out);
    out
}

fn cell_label(width: p2mdie_ilp::settings::Width) -> String {
    width.label()
}

/// Table 1: dataset characterization (|E+|, |E−|).
pub fn table1(res: &SweepResults) -> String {
    let header = vec!["Dataset".to_owned(), "|E+|".to_owned(), "|E-|".to_owned()];
    let rows: Vec<Vec<String>> = res
        .datasets
        .iter()
        .map(|d| vec![d.name.clone(), d.pos.to_string(), d.neg.to_string()])
        .collect();
    render_table("Table 1. Datasets Characterization", &header, &rows)
}

fn grid_table<F>(res: &SweepResults, title: &str, include_seq: bool, f: F) -> String
where
    F: Fn(&RunSeries) -> String,
{
    let mut header = vec!["Dataset".to_owned(), "Width".to_owned()];
    if include_seq {
        header.push("1".to_owned());
    }
    for p in &res.config.procs {
        header.push(p.to_string());
    }
    let mut rows = Vec::new();
    for d in &res.datasets {
        for (wi, w) in res.config.widths.iter().enumerate() {
            let mut row = vec![d.name.clone(), cell_label(*w)];
            if include_seq {
                row.push(if wi == 0 { f(&d.seq) } else { "-".to_owned() });
            }
            for p in &res.config.procs {
                let s = d.cell(*w, *p).expect("cell present");
                row.push(f(s));
            }
            rows.push(row);
        }
    }
    render_table(title, &header, &rows)
}

/// Table 2: average speedup per (width, processors).
pub fn table2(res: &SweepResults) -> String {
    grid_table(res, "Table 2. Average speedup observed", false, |s| {
        format!("{:.2}", mean(&s.speedups))
    })
}

/// Table 3: average execution time (virtual seconds).
pub fn table3(res: &SweepResults) -> String {
    grid_table(
        res,
        "Table 3. Average execution time (in seconds)",
        true,
        |s| format!("{:.0}", mean(&s.times)),
    )
}

/// Table 4: average communication exchanged (MBytes).
pub fn table4(res: &SweepResults) -> String {
    grid_table(
        res,
        "Table 4. Average communication exchanged (in MBytes)",
        false,
        |s| format!("{:.1}", mean(&s.mbytes)),
    )
}

/// Table 5: average number of epochs.
pub fn table5(res: &SweepResults) -> String {
    grid_table(res, "Table 5. Average number of epochs", false, |s| {
        format!("{:.0}", mean(&s.epochs))
    })
}

/// Table 6: average predictive accuracy ± std, with `*` marking cells whose
/// paired t-test against the sequential run is significant at 98%.
pub fn table6(res: &SweepResults) -> String {
    let mut header = vec!["Dataset".to_owned(), "Width".to_owned(), "1".to_owned()];
    for p in &res.config.procs {
        header.push(p.to_string());
    }
    let mut rows = Vec::new();
    for d in &res.datasets {
        for (wi, w) in res.config.widths.iter().enumerate() {
            let mut row = vec![d.name.clone(), cell_label(*w)];
            row.push(if wi == 0 {
                format!("{:.2} ({:.2})", mean(&d.seq.accs), stddev(&d.seq.accs))
            } else {
                "-".to_owned()
            });
            for p in &res.config.procs {
                let s = d.cell(*w, *p).expect("cell present");
                let star = match paired_ttest(&s.accs, &d.seq.accs) {
                    Some(t) if t.significant_at(0.98) => "*",
                    _ => "",
                };
                row.push(format!(
                    "{star}{:.2} ({:.2})",
                    mean(&s.accs),
                    stddev(&s.accs)
                ));
            }
            rows.push(row);
        }
    }
    render_table(
        "Table 6. Average predictive accuracy (std in parenthesis)",
        &header,
        &rows,
    )
}

/// Table 7 (beyond the paper): cross-strategy comparison. One row per
/// dataset × strategy, every strategy run at the same `(width, procs)`
/// cell over the same folds, with the constraint-broadcast traffic broken
/// out of the total so the cost of the pruning exchange is visible.
pub fn table7(res: &SweepResults) -> String {
    let header = vec![
        "Dataset".to_owned(),
        "Strategy".to_owned(),
        "Speedup".to_owned(),
        "Time (s)".to_owned(),
        "Epochs".to_owned(),
        "Comm (MB)".to_owned(),
        "Constr (MB)".to_owned(),
        "Accuracy".to_owned(),
    ];
    let mut rows = Vec::new();
    for d in &res.datasets {
        for (strat, s) in &d.strategy_cells {
            rows.push(vec![
                d.name.clone(),
                strat.label().to_owned(),
                format!("{:.2}", mean(&s.speedups)),
                format!("{:.0}", mean(&s.times)),
                format!("{:.0}", mean(&s.epochs)),
                format!("{:.3}", mean(&s.mbytes)),
                format!("{:.3}", mean(&s.cmbytes)),
                format!("{:.2} ({:.2})", mean(&s.accs), stddev(&s.accs)),
            ]);
        }
    }
    render_table(
        "Table 7. Cross-strategy comparison (same width, procs, and folds)",
        &header,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{DatasetSweep, SweepConfig};
    use p2mdie_core::Strategy;
    use p2mdie_ilp::settings::Width;

    fn fake_results() -> SweepResults {
        let config = SweepConfig {
            datasets: vec!["toy".into()],
            procs: vec![2, 4],
            widths: vec![Width::Unlimited, Width::Limit(10)],
            strategies: Strategy::ALL.to_vec(),
            ..SweepConfig::default()
        };
        let series = |t: f64| RunSeries {
            times: vec![t, t + 1.0],
            accs: vec![60.0, 62.0],
            epochs: vec![10.0, 12.0],
            mbytes: vec![1.5, 2.5],
            cmbytes: vec![0.0, 0.0],
            speedups: vec![2.0, 2.2],
        };
        let cseries = || RunSeries {
            cmbytes: vec![0.25, 0.35],
            ..series(30.0)
        };
        SweepResults {
            config,
            datasets: vec![DatasetSweep {
                name: "toy".into(),
                pos: 100,
                neg: 50,
                seq: series(100.0),
                cells: vec![
                    (Width::Unlimited, 2, series(50.0)),
                    (Width::Unlimited, 4, series(25.0)),
                    (Width::Limit(10), 2, series(45.0)),
                    (Width::Limit(10), 4, series(20.0)),
                ],
                strategy_cells: vec![
                    (Strategy::DataPipeline, series(25.0)),
                    (Strategy::SearchPartition, series(28.0)),
                    (Strategy::ConstraintDriven, cseries()),
                ],
            }],
        }
    }

    #[test]
    fn all_tables_render() {
        let r = fake_results();
        let t1 = table1(&r);
        assert!(t1.contains("toy") && t1.contains("100") && t1.contains("50"));
        let t2 = table2(&r);
        assert!(t2.contains("2.10"), "{t2}");
        let t3 = table3(&r);
        assert!(t3.contains("100") && t3.contains("nolimit"));
        let t4 = table4(&r);
        assert!(t4.contains("2.0"));
        let t5 = table5(&r);
        assert!(t5.contains("11"));
        let t6 = table6(&r);
        assert!(t6.contains("61.00"));
    }

    /// Table 7 renders one row per strategy, labelled, with the constraint
    /// column non-zero only on the constraint-driven row.
    #[test]
    fn table7_has_a_row_per_strategy() {
        let r = fake_results();
        let t7 = table7(&r);
        for strat in Strategy::ALL {
            assert!(t7.contains(strat.label()), "missing {strat} row:\n{t7}");
        }
        let driven = t7
            .lines()
            .find(|l| l.contains("constraint-driven"))
            .unwrap();
        assert!(driven.contains("0.300"), "{driven}");
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            "T",
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        for line in s.lines().skip(1) {
            if line.starts_with('|') {
                assert_eq!(line.len(), s.lines().nth(1).unwrap().len());
            }
        }
    }
}
