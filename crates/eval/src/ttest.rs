//! Paired two-tailed Student t-test — the paper's Table 6 significance
//! machinery ("we use the paired t-test to detect significance ... up to a
//! 98% confidence level").

use crate::stats::{betai, mean, stddev};

/// Result of a paired t-test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TTest {
    /// The t statistic (0 when the differences are all zero).
    pub t: f64,
    /// Degrees of freedom (n − 1).
    pub df: usize,
    /// Two-tailed p-value.
    pub p_value: f64,
}

impl TTest {
    /// Significant at confidence level `conf` (e.g. 0.98)?
    pub fn significant_at(&self, conf: f64) -> bool {
        self.p_value < 1.0 - conf
    }
}

/// Two-tailed CDF complement of the t distribution:
/// `P(|T| > t) = I_x(df/2, 1/2)` with `x = df / (df + t²)`.
pub fn t_two_tailed_p(t: f64, df: usize) -> f64 {
    if df == 0 {
        return 1.0;
    }
    let dff = df as f64;
    betai(dff / 2.0, 0.5, dff / (dff + t * t))
}

/// Runs a paired t-test over two same-length samples (e.g. per-fold
/// accuracies of two systems). Returns `None` when fewer than two pairs.
pub fn paired_ttest(a: &[f64], b: &[f64]) -> Option<TTest> {
    assert_eq!(a.len(), b.len(), "paired test needs paired samples");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let m = mean(&diffs);
    let sd = stddev(&diffs);
    let df = n - 1;
    if sd == 0.0 {
        // All differences identical: either exactly zero (no effect) or a
        // constant shift (infinitely significant).
        let p = if m == 0.0 { 1.0 } else { 0.0 };
        return Some(TTest {
            t: if m == 0.0 { 0.0 } else { f64::INFINITY },
            df,
            p_value: p,
        });
    }
    let t = m / (sd / (n as f64).sqrt());
    Some(TTest {
        t,
        df,
        p_value: t_two_tailed_p(t, df),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_t_distribution_quantiles() {
        // For df=4: P(|T| > 2.776) ≈ 0.05; P(|T| > 4.604) ≈ 0.01.
        assert!((t_two_tailed_p(2.776, 4) - 0.05).abs() < 2e-3);
        assert!((t_two_tailed_p(4.604, 4) - 0.01).abs() < 1e-3);
        // t = 0 is maximally insignificant.
        assert!((t_two_tailed_p(0.0, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_are_insignificant() {
        let a = [60.0, 62.0, 58.0, 61.0, 59.0];
        let t = paired_ttest(&a, &a).unwrap();
        assert_eq!(t.t, 0.0);
        assert!(!t.significant_at(0.98));
    }

    #[test]
    fn constant_shift_is_maximally_significant() {
        let a = [60.0, 62.0, 58.0];
        let b = [61.0, 63.0, 59.0];
        let t = paired_ttest(&a, &b).unwrap();
        assert!(t.significant_at(0.98));
    }

    #[test]
    fn clear_difference_is_detected() {
        let a = [50.0, 51.0, 49.5, 50.2, 50.8];
        let b = [70.1, 69.8, 70.5, 69.5, 70.2];
        let t = paired_ttest(&a, &b).unwrap();
        assert!(t.p_value < 0.001);
        assert!(t.significant_at(0.98));
    }

    #[test]
    fn noisy_similar_samples_are_not_significant() {
        let a = [60.0, 65.0, 55.0, 62.0, 58.0];
        let b = [61.0, 63.0, 56.0, 60.0, 60.0];
        let t = paired_ttest(&a, &b).unwrap();
        assert!(!t.significant_at(0.98), "p = {}", t.p_value);
    }

    #[test]
    fn symmetry_in_sign() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.0, 3.5, 5.5];
        let x = paired_ttest(&a, &b).unwrap();
        let y = paired_ttest(&b, &a).unwrap();
        assert!((x.p_value - y.p_value).abs() < 1e-12);
        assert!((x.t + y.t).abs() < 1e-12);
    }

    #[test]
    fn single_pair_returns_none() {
        assert!(paired_ttest(&[1.0], &[2.0]).is_none());
    }
}
