//! Small numeric helpers: mean, sample standard deviation, and the
//! regularized incomplete beta function backing the t-distribution CDF.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator). Returns 0 for fewer than
/// two values.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// ln Γ(x) (Lanczos approximation, g = 7, n = 9; |error| < 1e-10 for the
/// arguments used here).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction (Numerical Recipes §6.4).
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x out of [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let bt = (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * betacf(a, b, x) / a
    } else {
        1.0 - bt * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_IT: usize = 200;
    const EPS: f64 = 3.0e-14;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_IT {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138_089_935).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn betai_boundaries_and_symmetry() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let x = 0.3;
        assert!((betai(2.0, 5.0, x) - (1.0 - betai(5.0, 2.0, 1.0 - x))).abs() < 1e-10);
    }

    #[test]
    fn betai_known_value() {
        // I_{0.5}(1,1) = 0.5 (uniform), I_{0.25}(1,1) = 0.25.
        assert!((betai(1.0, 1.0, 0.5) - 0.5).abs() < 1e-10);
        assert!((betai(1.0, 1.0, 0.25) - 0.25).abs() < 1e-10);
    }
}
