//! Stratified k-fold cross-validation (the paper's §5.2: 5-fold CV).

use p2mdie_ilp::examples::Examples;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/test split.
#[derive(Clone, Debug)]
pub struct Fold {
    /// Training examples (k−1 folds joined).
    pub train: Examples,
    /// Held-out test examples.
    pub test: Examples,
}

/// Splits `examples` into `k` stratified folds (positives and negatives
/// dealt independently, so class balance is preserved per fold) and returns
/// the `k` train/test splits.
pub fn stratified_folds(examples: &Examples, k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 2, "need at least two folds");
    let mut rng = StdRng::seed_from_u64(seed);

    let deal = |n: usize, rng: &mut StdRng| -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let mut folds = vec![Vec::new(); k];
        for (i, e) in idx.into_iter().enumerate() {
            folds[i % k].push(e);
        }
        folds
    };
    let pos_folds = deal(examples.num_pos(), &mut rng);
    let neg_folds = deal(examples.num_neg(), &mut rng);

    (0..k)
        .map(|t| {
            let mut train_pos = Vec::new();
            let mut train_neg = Vec::new();
            for f in 0..k {
                if f != t {
                    train_pos.extend(pos_folds[f].iter().copied());
                    train_neg.extend(neg_folds[f].iter().copied());
                }
            }
            Fold {
                train: examples.subset(&train_pos, &train_neg),
                test: examples.subset(&pos_folds[t], &neg_folds[t]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    fn ex(n_pos: usize, n_neg: usize) -> Examples {
        let t = SymbolTable::new();
        let p = t.intern("p");
        Examples::new(
            (0..n_pos)
                .map(|i| Literal::new(p, vec![Term::Int(i as i64)]))
                .collect(),
            (0..n_neg)
                .map(|i| Literal::new(p, vec![Term::Int(-1 - i as i64)]))
                .collect(),
        )
    }

    #[test]
    fn folds_partition_everything() {
        let e = ex(23, 17);
        let folds = stratified_folds(&e, 5, 1);
        assert_eq!(folds.len(), 5);
        let total_test_pos: usize = folds.iter().map(|f| f.test.num_pos()).sum();
        let total_test_neg: usize = folds.iter().map(|f| f.test.num_neg()).sum();
        assert_eq!(total_test_pos, 23);
        assert_eq!(total_test_neg, 17);
        for f in &folds {
            assert_eq!(f.train.num_pos() + f.test.num_pos(), 23);
            assert_eq!(f.train.num_neg() + f.test.num_neg(), 17);
        }
    }

    #[test]
    fn folds_are_stratified() {
        let e = ex(50, 50);
        for f in stratified_folds(&e, 5, 2) {
            assert_eq!(f.test.num_pos(), 10);
            assert_eq!(f.test.num_neg(), 10);
        }
    }

    #[test]
    fn train_and_test_are_disjoint() {
        let e = ex(20, 10);
        for f in stratified_folds(&e, 4, 3) {
            for t in &f.test.pos {
                assert!(!f.train.pos.contains(t));
            }
            for t in &f.test.neg {
                assert!(!f.train.neg.contains(t));
            }
        }
    }

    #[test]
    fn deterministic() {
        let e = ex(20, 10);
        let a = stratified_folds(&e, 5, 7);
        let b = stratified_folds(&e, 5, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.test, y.test);
        }
    }
}
