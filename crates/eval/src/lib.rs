//! Evaluation machinery for the p²-mdie reproduction: stratified k-fold
//! cross-validation, theory accuracy, the paired Student t-test of the
//! paper's Table 6, ASCII table rendering, and the experiment sweep driver
//! that regenerates Tables 1–6 from live runs, plus a cross-strategy
//! comparison table (Table 7, beyond the paper) produced by the sweep's
//! strategy axis.

pub mod accuracy;
pub mod folds;
pub mod stats;
pub mod sweep;
pub mod tables;
pub mod ttest;

pub use accuracy::{score_theory, Confusion};
pub use folds::{stratified_folds, Fold};
pub use stats::{betai, ln_gamma, mean, stddev};
pub use sweep::{run_sweep, DatasetSweep, RunSeries, SweepConfig, SweepResults};
pub use tables::{render_table, table1, table2, table3, table4, table5, table6, table7};
pub use ttest::{paired_ttest, t_two_tailed_p, TTest};
