//! The experiment driver: runs the paper's full §5 protocol — 5-fold CV of
//! the sequential baseline and of p²-mdie at every (width, processors)
//! configuration — and collects the raw series Tables 2–6 are rendered
//! from.

use crate::accuracy::score_theory;
use crate::folds::stratified_folds;
use p2mdie_cluster::CostModel;
use p2mdie_core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie_core::Strategy;
use p2mdie_datasets::Dataset;
use p2mdie_ilp::settings::Width;

/// Sweep configuration (defaults reproduce the paper's grid).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Dataset names (`p2mdie_datasets::by_name`).
    pub datasets: Vec<String>,
    /// Example-count scale factor (1.0 = the paper's Table 1 sizes).
    pub scale: f64,
    /// Master seed (dataset generation, folds, partitioning).
    pub seed: u64,
    /// Number of cross-validation folds (the paper uses 5).
    pub folds: usize,
    /// Processor counts (the paper uses 2, 4, 8).
    pub procs: Vec<usize>,
    /// Pipeline widths (the paper uses nolimit and 10).
    pub widths: Vec<Width>,
    /// Virtual-time cost model.
    pub model: CostModel,
    /// Parallelization strategies for the cross-strategy axis (Table 7).
    /// Each one runs at `widths[0]` × `procs.last()` so the comparison is
    /// apples-to-apples; the paper's grid (Tables 2–6) always runs the
    /// data-pipeline protocol. Empty disables the axis.
    pub strategies: Vec<Strategy>,
    /// Print per-run progress to stderr.
    pub verbose: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            datasets: p2mdie_datasets::PAPER_DATASETS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            scale: 1.0,
            seed: 2005,
            folds: 5,
            procs: vec![2, 4, 8],
            widths: vec![Width::Unlimited, Width::Limit(10)],
            model: CostModel::beowulf_2005(),
            strategies: vec![Strategy::DataPipeline],
            verbose: false,
        }
    }
}

/// Per-fold series of one configuration.
#[derive(Clone, Debug, Default)]
pub struct RunSeries {
    /// Virtual execution times (seconds), one per fold.
    pub times: Vec<f64>,
    /// Test-fold accuracies (percent).
    pub accs: Vec<f64>,
    /// Epoch counts.
    pub epochs: Vec<f64>,
    /// Communication volumes (MBytes).
    pub mbytes: Vec<f64>,
    /// Constraint-broadcast volumes (MBytes) — the labelled subset of
    /// `mbytes` spent exchanging pruning constraints; zero everywhere
    /// except `Strategy::ConstraintDriven` cells.
    pub cmbytes: Vec<f64>,
    /// Per-fold speedups vs the sequential fold time.
    pub speedups: Vec<f64>,
}

/// All results for one dataset.
#[derive(Clone, Debug)]
pub struct DatasetSweep {
    /// Dataset name.
    pub name: String,
    /// |E+| at the swept scale.
    pub pos: usize,
    /// |E−| at the swept scale.
    pub neg: usize,
    /// Sequential baseline series.
    pub seq: RunSeries,
    /// One series per `(width, procs)` cell, in sweep order.
    pub cells: Vec<(Width, usize, RunSeries)>,
    /// One series per strategy on the cross-strategy axis (all at
    /// `widths[0]` × `procs.last()`), in config order.
    pub strategy_cells: Vec<(Strategy, RunSeries)>,
}

impl DatasetSweep {
    /// Finds a cell's series.
    pub fn cell(&self, width: Width, procs: usize) -> Option<&RunSeries> {
        self.cells
            .iter()
            .find(|(w, p, _)| *w == width && *p == procs)
            .map(|(_, _, s)| s)
    }

    /// Finds a strategy cell's series.
    pub fn strategy_cell(&self, strategy: Strategy) -> Option<&RunSeries> {
        self.strategy_cells
            .iter()
            .find(|(s, _)| *s == strategy)
            .map(|(_, s)| s)
    }
}

/// The whole sweep's results.
#[derive(Clone, Debug)]
pub struct SweepResults {
    /// The configuration the sweep ran with.
    pub config: SweepConfig,
    /// Per-dataset results, in config order.
    pub datasets: Vec<DatasetSweep>,
}

/// Runs the full experiment grid.
///
/// # Panics
/// Panics on unknown dataset names or on a worker failure (both are bugs,
/// not recoverable conditions, in this harness).
pub fn run_sweep(cfg: &SweepConfig) -> SweepResults {
    let mut datasets = Vec::with_capacity(cfg.datasets.len());
    for name in &cfg.datasets {
        let ds = p2mdie_datasets::by_name(name, cfg.scale, cfg.seed)
            .unwrap_or_else(|| panic!("unknown dataset `{name}`"));
        datasets.push(sweep_dataset(&ds, cfg));
    }
    SweepResults {
        config: cfg.clone(),
        datasets,
    }
}

fn sweep_dataset(ds: &Dataset, cfg: &SweepConfig) -> DatasetSweep {
    let folds = stratified_folds(&ds.examples, cfg.folds, cfg.seed);
    let mut out = DatasetSweep {
        name: ds.name.to_owned(),
        pos: ds.examples.num_pos(),
        neg: ds.examples.num_neg(),
        seq: RunSeries::default(),
        cells: cfg
            .widths
            .iter()
            .flat_map(|w| cfg.procs.iter().map(|p| (*w, *p, RunSeries::default())))
            .collect::<Vec<_>>(),
        strategy_cells: cfg
            .strategies
            .iter()
            .map(|s| (*s, RunSeries::default()))
            .collect::<Vec<_>>(),
    };
    let strategy_width = cfg.widths.first().copied().unwrap_or(Width::Unlimited);
    let strategy_procs = cfg.procs.last().copied().unwrap_or(2);

    for (fi, fold) in folds.iter().enumerate() {
        // Sequential baseline for this fold.
        let seq = run_sequential_timed(&ds.engine, &fold.train, &cfg.model);
        let seq_acc = score_theory(&ds.engine, &seq.theory, &fold.test).accuracy_pct();
        if cfg.verbose {
            eprintln!(
                "[{}] fold {fi}: seq t={:.0}s epochs={} acc={:.1}% (wall {:.1}s)",
                ds.name,
                seq.vtime,
                seq.epochs,
                seq_acc,
                seq.wall.as_secs_f64()
            );
        }
        out.seq.times.push(seq.vtime);
        out.seq.accs.push(seq_acc);
        out.seq.epochs.push(seq.epochs as f64);
        out.seq.mbytes.push(0.0);
        out.seq.cmbytes.push(0.0);
        out.seq.speedups.push(1.0);

        for (w, p, series) in &mut out.cells {
            let pcfg = cell_config(cfg, *p, *w, fi, Strategy::DataPipeline);
            let rep = run_parallel(&ds.engine, &fold.train, &pcfg)
                .unwrap_or_else(|e| panic!("parallel run failed: {e}"));
            let acc = score_theory(&ds.engine, &rep.clauses(), &fold.test).accuracy_pct();
            if cfg.verbose {
                eprintln!(
                    "[{}] fold {fi}: p={p} w={} t={:.0}s speedup={:.2} epochs={} {:.1}MB acc={:.1}% (wall {:.1}s)",
                    ds.name,
                    w.label(),
                    rep.vtime,
                    seq.vtime / rep.vtime,
                    rep.epochs,
                    rep.megabytes(),
                    acc,
                    rep.wall.as_secs_f64()
                );
            }
            series.times.push(rep.vtime);
            series.accs.push(acc);
            series.epochs.push(rep.epochs as f64);
            series.mbytes.push(rep.megabytes());
            series.cmbytes.push(rep.constraint_bytes as f64 / 1.0e6);
            series.speedups.push(seq.vtime / rep.vtime);
        }

        // Cross-strategy axis: every strategy at the same (width, procs)
        // cell, against the same folds, so Table 7 compares like with like.
        for (strat, series) in &mut out.strategy_cells {
            let pcfg = cell_config(cfg, strategy_procs, strategy_width, fi, *strat);
            let rep = run_parallel(&ds.engine, &fold.train, &pcfg)
                .unwrap_or_else(|e| panic!("strategy run failed: {e}"));
            let acc = score_theory(&ds.engine, &rep.clauses(), &fold.test).accuracy_pct();
            if cfg.verbose {
                eprintln!(
                    "[{}] fold {fi}: strategy={strat} t={:.0}s speedup={:.2} epochs={} {:.1}MB ({:.2}MB constraints) acc={:.1}%",
                    ds.name,
                    rep.vtime,
                    seq.vtime / rep.vtime,
                    rep.epochs,
                    rep.megabytes(),
                    rep.constraint_bytes as f64 / 1.0e6,
                    acc,
                );
            }
            series.times.push(rep.vtime);
            series.accs.push(acc);
            series.epochs.push(rep.epochs as f64);
            series.mbytes.push(rep.megabytes());
            series.cmbytes.push(rep.constraint_bytes as f64 / 1.0e6);
            series.speedups.push(seq.vtime / rep.vtime);
        }
    }
    out
}

fn cell_config(
    cfg: &SweepConfig,
    workers: usize,
    width: Width,
    fold: usize,
    strategy: Strategy,
) -> ParallelConfig {
    ParallelConfig {
        workers,
        width,
        model: cfg.model,
        seed: cfg.seed.wrapping_add(fold as u64),
        repartition: false,
        ship_kb: false,
        transport: p2mdie_core::driver::TransportKind::InProcess,
        recovery: p2mdie_core::driver::RecoveryPolicy::Abort,
        chaos: Vec::new(),
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep on a tiny scale: exercises the full pipeline
    /// (folds × configs × datasets) end to end.
    #[test]
    fn mini_sweep_produces_full_grid() {
        let cfg = SweepConfig {
            datasets: vec!["carcinogenesis".into()],
            scale: 0.08,
            seed: 1,
            folds: 2,
            procs: vec![2],
            widths: vec![Width::Limit(4)],
            model: CostModel::beowulf_2005(),
            strategies: Vec::new(),
            verbose: false,
        };
        let res = run_sweep(&cfg);
        assert_eq!(res.datasets.len(), 1);
        let d = &res.datasets[0];
        assert_eq!(d.seq.times.len(), 2);
        assert_eq!(d.cells.len(), 1);
        assert!(d.strategy_cells.is_empty());
        let cell = d.cell(Width::Limit(4), 2).unwrap();
        assert_eq!(cell.times.len(), 2);
        assert!(cell.times.iter().all(|t| *t > 0.0));
        assert!(cell.accs.iter().all(|a| (0.0..=100.0).contains(a)));
        assert!(cell.mbytes.iter().all(|m| *m > 0.0));
        assert!(cell.cmbytes.iter().all(|c| *c == 0.0));
    }

    /// The cross-strategy axis: all three strategies on two datasets, each
    /// producing a complete series, with constraint traffic non-zero only
    /// under the constraint-driven strategy.
    #[test]
    fn strategy_axis_covers_every_strategy_on_two_datasets() {
        let cfg = SweepConfig {
            datasets: vec!["carcinogenesis".into(), "mesh".into()],
            scale: 0.08,
            seed: 7,
            folds: 2,
            procs: vec![2],
            widths: vec![Width::Limit(4)],
            model: CostModel::beowulf_2005(),
            strategies: Strategy::ALL.to_vec(),
            verbose: false,
        };
        let res = run_sweep(&cfg);
        assert_eq!(res.datasets.len(), 2);
        for d in &res.datasets {
            assert_eq!(d.strategy_cells.len(), Strategy::ALL.len());
            for strat in Strategy::ALL {
                let s = d.strategy_cell(strat).unwrap();
                assert_eq!(s.times.len(), 2);
                assert!(s.times.iter().all(|t| *t > 0.0), "{strat} on {}", d.name);
                assert!(s.accs.iter().all(|a| (0.0..=100.0).contains(a)));
                if strat == Strategy::ConstraintDriven {
                    assert!(
                        s.cmbytes.iter().all(|c| *c > 0.0),
                        "no constraint traffic on {}",
                        d.name
                    );
                } else {
                    assert!(
                        s.cmbytes.iter().all(|c| *c == 0.0),
                        "{strat} metered constraints"
                    );
                }
            }
        }
    }
}
