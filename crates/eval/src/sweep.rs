//! The experiment driver: runs the paper's full §5 protocol — 5-fold CV of
//! the sequential baseline and of p²-mdie at every (width, processors)
//! configuration — and collects the raw series Tables 2–6 are rendered
//! from.

use crate::accuracy::score_theory;
use crate::folds::stratified_folds;
use p2mdie_cluster::CostModel;
use p2mdie_core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie_datasets::Dataset;
use p2mdie_ilp::settings::Width;

/// Sweep configuration (defaults reproduce the paper's grid).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Dataset names (`p2mdie_datasets::by_name`).
    pub datasets: Vec<String>,
    /// Example-count scale factor (1.0 = the paper's Table 1 sizes).
    pub scale: f64,
    /// Master seed (dataset generation, folds, partitioning).
    pub seed: u64,
    /// Number of cross-validation folds (the paper uses 5).
    pub folds: usize,
    /// Processor counts (the paper uses 2, 4, 8).
    pub procs: Vec<usize>,
    /// Pipeline widths (the paper uses nolimit and 10).
    pub widths: Vec<Width>,
    /// Virtual-time cost model.
    pub model: CostModel,
    /// Print per-run progress to stderr.
    pub verbose: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            datasets: p2mdie_datasets::PAPER_DATASETS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            scale: 1.0,
            seed: 2005,
            folds: 5,
            procs: vec![2, 4, 8],
            widths: vec![Width::Unlimited, Width::Limit(10)],
            model: CostModel::beowulf_2005(),
            verbose: false,
        }
    }
}

/// Per-fold series of one configuration.
#[derive(Clone, Debug, Default)]
pub struct RunSeries {
    /// Virtual execution times (seconds), one per fold.
    pub times: Vec<f64>,
    /// Test-fold accuracies (percent).
    pub accs: Vec<f64>,
    /// Epoch counts.
    pub epochs: Vec<f64>,
    /// Communication volumes (MBytes).
    pub mbytes: Vec<f64>,
    /// Per-fold speedups vs the sequential fold time.
    pub speedups: Vec<f64>,
}

/// All results for one dataset.
#[derive(Clone, Debug)]
pub struct DatasetSweep {
    /// Dataset name.
    pub name: String,
    /// |E+| at the swept scale.
    pub pos: usize,
    /// |E−| at the swept scale.
    pub neg: usize,
    /// Sequential baseline series.
    pub seq: RunSeries,
    /// One series per `(width, procs)` cell, in sweep order.
    pub cells: Vec<(Width, usize, RunSeries)>,
}

impl DatasetSweep {
    /// Finds a cell's series.
    pub fn cell(&self, width: Width, procs: usize) -> Option<&RunSeries> {
        self.cells
            .iter()
            .find(|(w, p, _)| *w == width && *p == procs)
            .map(|(_, _, s)| s)
    }
}

/// The whole sweep's results.
#[derive(Clone, Debug)]
pub struct SweepResults {
    /// The configuration the sweep ran with.
    pub config: SweepConfig,
    /// Per-dataset results, in config order.
    pub datasets: Vec<DatasetSweep>,
}

/// Runs the full experiment grid.
///
/// # Panics
/// Panics on unknown dataset names or on a worker failure (both are bugs,
/// not recoverable conditions, in this harness).
pub fn run_sweep(cfg: &SweepConfig) -> SweepResults {
    let mut datasets = Vec::with_capacity(cfg.datasets.len());
    for name in &cfg.datasets {
        let ds = p2mdie_datasets::by_name(name, cfg.scale, cfg.seed)
            .unwrap_or_else(|| panic!("unknown dataset `{name}`"));
        datasets.push(sweep_dataset(&ds, cfg));
    }
    SweepResults {
        config: cfg.clone(),
        datasets,
    }
}

fn sweep_dataset(ds: &Dataset, cfg: &SweepConfig) -> DatasetSweep {
    let folds = stratified_folds(&ds.examples, cfg.folds, cfg.seed);
    let mut out = DatasetSweep {
        name: ds.name.to_owned(),
        pos: ds.examples.num_pos(),
        neg: ds.examples.num_neg(),
        seq: RunSeries::default(),
        cells: cfg
            .widths
            .iter()
            .flat_map(|w| cfg.procs.iter().map(|p| (*w, *p, RunSeries::default())))
            .collect::<Vec<_>>(),
    };

    for (fi, fold) in folds.iter().enumerate() {
        // Sequential baseline for this fold.
        let seq = run_sequential_timed(&ds.engine, &fold.train, &cfg.model);
        let seq_acc = score_theory(&ds.engine, &seq.theory, &fold.test).accuracy_pct();
        if cfg.verbose {
            eprintln!(
                "[{}] fold {fi}: seq t={:.0}s epochs={} acc={:.1}% (wall {:.1}s)",
                ds.name,
                seq.vtime,
                seq.epochs,
                seq_acc,
                seq.wall.as_secs_f64()
            );
        }
        out.seq.times.push(seq.vtime);
        out.seq.accs.push(seq_acc);
        out.seq.epochs.push(seq.epochs as f64);
        out.seq.mbytes.push(0.0);
        out.seq.speedups.push(1.0);

        for (w, p, series) in &mut out.cells {
            let pcfg = ParallelConfig {
                workers: *p,
                width: *w,
                model: cfg.model,
                seed: cfg.seed.wrapping_add(fi as u64),
                repartition: false,
                ship_kb: false,
                transport: p2mdie_core::driver::TransportKind::InProcess,
                recovery: p2mdie_core::driver::RecoveryPolicy::Abort,
                chaos: Vec::new(),
            };
            let rep = run_parallel(&ds.engine, &fold.train, &pcfg)
                .unwrap_or_else(|e| panic!("parallel run failed: {e}"));
            let acc = score_theory(&ds.engine, &rep.clauses(), &fold.test).accuracy_pct();
            if cfg.verbose {
                eprintln!(
                    "[{}] fold {fi}: p={p} w={} t={:.0}s speedup={:.2} epochs={} {:.1}MB acc={:.1}% (wall {:.1}s)",
                    ds.name,
                    w.label(),
                    rep.vtime,
                    seq.vtime / rep.vtime,
                    rep.epochs,
                    rep.megabytes(),
                    acc,
                    rep.wall.as_secs_f64()
                );
            }
            series.times.push(rep.vtime);
            series.accs.push(acc);
            series.epochs.push(rep.epochs as f64);
            series.mbytes.push(rep.megabytes());
            series.speedups.push(seq.vtime / rep.vtime);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep on a tiny scale: exercises the full pipeline
    /// (folds × configs × datasets) end to end.
    #[test]
    fn mini_sweep_produces_full_grid() {
        let cfg = SweepConfig {
            datasets: vec!["carcinogenesis".into()],
            scale: 0.08,
            seed: 1,
            folds: 2,
            procs: vec![2],
            widths: vec![Width::Limit(4)],
            model: CostModel::beowulf_2005(),
            verbose: false,
        };
        let res = run_sweep(&cfg);
        assert_eq!(res.datasets.len(), 1);
        let d = &res.datasets[0];
        assert_eq!(d.seq.times.len(), 2);
        assert_eq!(d.cells.len(), 1);
        let cell = d.cell(Width::Limit(4), 2).unwrap();
        assert_eq!(cell.times.len(), 2);
        assert!(cell.times.iter().all(|t| *t > 0.0));
        assert!(cell.accs.iter().all(|a| (0.0..=100.0).contains(a)));
        assert!(cell.mbytes.iter().all(|m| *m > 0.0));
    }
}
