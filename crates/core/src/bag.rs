//! The master's rule bag (paper Fig. 5, steps 9–22).
//!
//! Rules arriving from the `p` pipelines are pooled, scored *globally* (one
//! `evaluate` broadcast collects per-subset counts), then consumed: pick the
//! globally best, mark its positives covered everywhere, re-evaluate what
//! remains, drop what is no longer good, repeat.

use p2mdie_ilp::settings::{ScoreFn, Settings};
use p2mdie_logic::clause::Clause;
use std::collections::HashSet;

/// One bag entry with its latest global evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct BagRule {
    /// The candidate rule.
    pub clause: Clause,
    /// Pipeline origin (worker rank), for tracing.
    pub origin: u8,
    /// Latest per-worker `(pos, neg)` counts, aligned with worker ranks
    /// `1..=p` (empty until the first evaluation).
    pub per_worker: Vec<(u32, u32)>,
}

impl BagRule {
    /// Aggregate positive cover over all subsets.
    pub fn global_pos(&self) -> u32 {
        self.per_worker.iter().map(|c| c.0).sum()
    }

    /// Aggregate negative cover over all subsets.
    pub fn global_neg(&self) -> u32 {
        self.per_worker.iter().map(|c| c.1).sum()
    }

    /// Global score under `f`.
    pub fn global_score(&self, f: ScoreFn) -> i64 {
        f.score(self.global_pos(), self.global_neg(), self.clause.length())
    }
}

/// The bag of candidate rules awaiting global consumption.
#[derive(Clone, Debug, Default)]
pub struct RuleBag {
    rules: Vec<BagRule>,
    seen: HashSet<Clause>,
}

impl RuleBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a rule unless an α-variant is already present. Returns
    /// whether it was inserted.
    pub fn insert(&mut self, clause: Clause, origin: u8) -> bool {
        let key = clause.normalize();
        if !self.seen.insert(key) {
            return false;
        }
        self.rules.push(BagRule {
            clause,
            origin,
            per_worker: Vec::new(),
        });
        true
    }

    /// Number of rules currently in the bag.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The clauses in bag order (what an `Evaluate` broadcast carries).
    pub fn clauses(&self) -> Vec<Clause> {
        self.rules.iter().map(|r| r.clause.clone()).collect()
    }

    /// Stores fresh evaluation results. `results[k]` is worker `k+1`'s
    /// count vector, aligned with the bag order of the `clauses()` call the
    /// evaluation was broadcast from.
    ///
    /// # Panics
    /// Panics when a worker's vector length disagrees with the bag (a
    /// protocol error that must not be silently absorbed).
    pub fn set_results(&mut self, results: &[Vec<(u32, u32)>]) {
        for (k, counts) in results.iter().enumerate() {
            assert_eq!(
                counts.len(),
                self.rules.len(),
                "worker {} returned {} counts for a bag of {}",
                k + 1,
                counts.len(),
                self.rules.len()
            );
        }
        for (i, rule) in self.rules.iter_mut().enumerate() {
            rule.per_worker = results.iter().map(|r| r[i]).collect();
        }
    }

    /// Removes and returns the globally best rule (highest score; ties go
    /// to the shorter clause, then to bag order). `None` on an empty bag.
    pub fn pick_best(&mut self, f: ScoreFn) -> Option<BagRule> {
        let best = self
            .rules
            .iter()
            .enumerate()
            .min_by_key(|(i, r)| (-r.global_score(f), r.clause.length() as i64, *i))
            .map(|(i, _)| i)?;
        Some(self.rules.remove(best))
    }

    /// Drops every rule whose *global* coverage no longer satisfies the
    /// goodness criteria (Fig. 5 step 20, `notGood`). Returns how many were
    /// dropped.
    pub fn drop_not_good(&mut self, settings: &Settings) -> usize {
        let before = self.rules.len();
        self.rules
            .retain(|r| settings.is_good(r.global_pos(), r.global_neg()));
        before - self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    fn clause(t: &SymbolTable, body_preds: &[&str]) -> Clause {
        Clause::new(
            Literal::new(t.intern("h"), vec![Term::Var(0)]),
            body_preds
                .iter()
                .map(|p| Literal::new(t.intern(p), vec![Term::Var(0)]))
                .collect(),
        )
    }

    #[test]
    fn insert_dedups_alpha_variants() {
        let t = SymbolTable::new();
        let mut bag = RuleBag::new();
        assert!(bag.insert(clause(&t, &["q"]), 1));
        // Same clause with different variable ids.
        let variant = Clause::new(
            Literal::new(t.intern("h"), vec![Term::Var(7)]),
            vec![Literal::new(t.intern("q"), vec![Term::Var(7)])],
        );
        assert!(!bag.insert(variant, 2));
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn results_align_and_aggregate() {
        let t = SymbolTable::new();
        let mut bag = RuleBag::new();
        bag.insert(clause(&t, &["q"]), 1);
        bag.insert(clause(&t, &["r"]), 2);
        bag.set_results(&[vec![(3, 0), (1, 2)], vec![(2, 1), (4, 0)]]);
        assert_eq!(bag.rules[0].global_pos(), 5);
        assert_eq!(bag.rules[0].global_neg(), 1);
        assert_eq!(bag.rules[1].global_pos(), 5);
        assert_eq!(bag.rules[1].global_neg(), 2);
    }

    #[test]
    fn pick_best_is_global_and_deterministic() {
        let t = SymbolTable::new();
        let mut bag = RuleBag::new();
        bag.insert(clause(&t, &["q"]), 1);
        bag.insert(clause(&t, &["r"]), 2);
        bag.set_results(&[vec![(3, 0), (6, 1)]]);
        let best = bag.pick_best(ScoreFn::Coverage).unwrap();
        assert_eq!(best.global_pos(), 6);
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn ties_prefer_shorter_then_bag_order() {
        let t = SymbolTable::new();
        let mut bag = RuleBag::new();
        bag.insert(clause(&t, &["q", "r"]), 1);
        bag.insert(clause(&t, &["s"]), 2);
        bag.set_results(&[vec![(3, 0), (3, 0)]]);
        let best = bag.pick_best(ScoreFn::Coverage).unwrap();
        assert_eq!(best.clause.length(), 1);
    }

    #[test]
    fn drop_not_good_filters_globally() {
        let t = SymbolTable::new();
        let mut bag = RuleBag::new();
        bag.insert(clause(&t, &["q"]), 1);
        bag.insert(clause(&t, &["r"]), 2);
        // Rule 0: 1 pos (below min_pos 2); rule 1: fine.
        bag.set_results(&[vec![(1, 0), (5, 0)]]);
        let settings = Settings {
            min_pos: 2,
            noise: 0,
            ..Settings::default()
        };
        assert_eq!(bag.drop_not_good(&settings), 1);
        assert_eq!(bag.len(), 1);
        assert_eq!(bag.rules[0].global_pos(), 5);
    }

    #[test]
    #[should_panic(expected = "returned")]
    fn misaligned_results_panic() {
        let t = SymbolTable::new();
        let mut bag = RuleBag::new();
        bag.insert(clause(&t, &["q"]), 1);
        bag.set_results(&[vec![]]);
    }

    #[test]
    fn empty_bag_behaviour() {
        let mut bag = RuleBag::new();
        assert!(bag.is_empty());
        assert!(bag.pick_best(ScoreFn::Coverage).is_none());
        assert_eq!(bag.drop_not_good(&Settings::default()), 0);
    }
}
