//! `p2mdie-worker` — a standalone worker rank for multi-process cluster
//! runs.
//!
//! Spawned once per rank by the TCP drivers (`run_parallel_tcp`,
//! `run_coverage_parallel_tcp`, or `ParallelConfig::with_transport`):
//!
//! ```sh
//! p2mdie-worker --connect 127.0.0.1:40042 --rank 2 [--timeout-secs 60]
//! ```
//!
//! The process dials the master, completes the rendezvous handshake (which
//! also yields the cost model and the worker-to-worker mesh), bootstraps
//! its ILP engine from the wire (`Msg::KbSnapshot` + `Msg::Configure` +
//! `Msg::LoadPartition`), runs the worker protocol until `Stop`, sends a
//! shutdown report (final clock, steps, traffic row), and exits 0.
//!
//! Exit codes: 0 success · 1 bad usage · 2 connect/handshake failure ·
//! 3 injected test failure · 101 worker panic (poison broadcast first) ·
//! 102 poisoned by another rank's failure.
//!
//! The `P2MDIE_TEST_FAIL` environment variable (`exit:<rank>` or
//! `badframe:<rank>`) injects post-handshake failures so the failure-
//! propagation tests can exercise a worker process dying or emitting
//! garbage without a special binary.

use p2mdie_cluster::comm::{CommFailure, Endpoint, Poisoned};
use p2mdie_cluster::net::{worker_connect, TcpTransport, WorkerReport};
use p2mdie_cluster::TrafficStats;
use p2mdie_core::remote::run_remote_worker;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn main() {
    std::process::exit(run());
}

fn usage() -> i32 {
    eprintln!("usage: p2mdie-worker --connect HOST:PORT --rank N [--timeout-secs N]");
    1
}

fn run() -> i32 {
    let mut connect: Option<String> = None;
    let mut rank: Option<usize> = None;
    let mut timeout = Duration::from_secs(60);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| eprintln!("missing value for {what}"))
        };
        match arg.as_str() {
            "--connect" => match take("--connect") {
                Ok(v) => connect = Some(v),
                Err(()) => return usage(),
            },
            "--rank" => match take("--rank").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) => rank = Some(v),
                _ => return usage(),
            },
            "--timeout-secs" => match take("--timeout-secs").map(|v| v.parse::<u64>()) {
                Ok(Ok(v)) => timeout = Duration::from_secs(v),
                _ => return usage(),
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(connect), Some(rank)) = (connect, rank) else {
        return usage();
    };
    if rank == 0 {
        eprintln!("rank 0 is the master; worker ranks start at 1");
        return usage();
    }

    let (transport, model) = match worker_connect(&connect, rank, timeout) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("worker rank {rank}: connecting to {connect}: {e}");
            return 2;
        }
    };
    let size = transport.size();
    let mut ep = Endpoint::from_parts(rank, size, transport, model, TrafficStats::new(size));

    if let Some(code) = apply_test_injection(rank, &mut ep) {
        return code;
    }

    match catch_unwind(AssertUnwindSafe(|| run_remote_worker(&mut ep))) {
        Ok(()) => {
            let report = WorkerReport {
                vtime: ep.now(),
                steps: ep.compute_steps(),
                sends: ep.stats().send_row(rank),
            };
            if !ep.transport_mut().send_report(&report) {
                eprintln!("worker rank {rank}: master gone before the shutdown report");
            }
            0
        }
        Err(payload) => {
            if let Some(p) = payload.downcast_ref::<Poisoned>() {
                eprintln!("worker rank {rank}: poisoned by rank {}", p.origin);
                return 102;
            }
            let message = panic_text(&*payload);
            ep.broadcast_poison();
            eprintln!("worker rank {rank} panicked: {message}");
            101
        }
    }
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(cf) = e.downcast_ref::<CommFailure>() {
        return cf.to_string();
    }
    if let Some(s) = e.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = e.downcast_ref::<String>() {
        return s.clone();
    }
    "<non-string panic payload>".to_owned()
}

/// Post-handshake failure injection for the failure-propagation tests
/// (`P2MDIE_TEST_FAIL=exit:<rank>` / `badframe:<rank>`). Returns the exit
/// code when this rank must fail, `None` otherwise.
fn apply_test_injection(rank: usize, ep: &mut Endpoint<TcpTransport>) -> Option<i32> {
    let spec = std::env::var("P2MDIE_TEST_FAIL").ok()?;
    let (mode, target) = spec.split_once(':')?;
    if target.parse::<usize>().ok()? != rank {
        return None;
    }
    match mode {
        "exit" => {
            eprintln!("worker rank {rank}: injected early exit");
            Some(3)
        }
        "badframe" => {
            // A length prefix beyond MAX_FRAME: unambiguously malformed on
            // the first four bytes.
            let garbage = 0xFFFF_FFFFu32.to_le_bytes();
            ep.transport_mut().send_raw_bytes(0, &garbage);
            eprintln!("worker rank {rank}: injected malformed frame");
            Some(3)
        }
        other => {
            eprintln!("worker rank {rank}: unknown injection `{other}`");
            Some(3)
        }
    }
}
