//! `p2mdie-worker` — a standalone worker rank for multi-process cluster
//! runs.
//!
//! Spawned once per rank by the TCP drivers (`run_parallel_tcp`,
//! `run_coverage_parallel_tcp`, or `ParallelConfig::with_transport`):
//!
//! ```sh
//! p2mdie-worker --connect 127.0.0.1:40042 --rank 2 [--timeout-secs 60]
//! ```
//!
//! The process dials the master, completes the rendezvous handshake (which
//! also yields the cost model and the worker-to-worker mesh), bootstraps
//! its ILP engine from the wire (`Msg::KbSnapshot` + `Msg::Configure` +
//! `Msg::LoadPartition`), runs the worker protocol until `Stop`, sends a
//! shutdown report (final clock, steps, traffic row, recovery counters),
//! and exits 0.
//!
//! Exit codes: 0 success · 1 bad usage · 2 connect/handshake failure ·
//! 3 injected test failure · 4 master disconnected while this worker sat
//! idle between jobs of a resident service mesh (not a mid-job failure;
//! `p2mdie_cluster::net::IDLE_DISCONNECT_EXIT`) · 101 worker panic (poison
//! broadcast first) · 102 poisoned by another rank's failure.
//!
//! `P2MDIE_TRACE=<base>` turns the flight recorder on: the process
//! streams its span/event records to `<base>.rank<N>.jsonl` (the path
//! convention of `p2mdie_cluster::net::trace_rank_path`) and the
//! spawning master merges every rank file into one timeline at the end
//! of the run. Worker processes inherit the variable from the spawner,
//! so setting it on the driver traces the whole mesh.
//!
//! The `P2MDIE_TEST_FAIL` environment variable injects post-handshake
//! failures so the failure-propagation and recovery tests can exercise a
//! worker process misbehaving without a special binary. It holds a
//! comma-separated list of specs; the first one naming this process's rank
//! applies:
//!
//! * `exit:<rank>` — exit 3 immediately after the handshake;
//! * `badframe:<rank>` — send the master garbage bytes, then exit 3;
//! * `stall:<rank>` — complete the handshake, then go silent *without
//!   exiting* (the wedged-process case: links stay open, nothing flows;
//!   the spawner's teardown deadline must reap it);
//! * `exit-after:<rank>:<n>` — run the real protocol but die (exit 3,
//!   no poison, no report) the moment an `(n+1)`-th message would be
//!   received — a mid-run crash at a deterministic protocol point.

use p2mdie_cluster::comm::{CommFailure, Endpoint, Poisoned};
use p2mdie_cluster::net::{worker_connect, TcpTransport, WorkerReport, IDLE_DISCONNECT_EXIT};
use p2mdie_cluster::TrafficStats;
use p2mdie_cluster::{Envelope, Transport, TransportEvent};
use p2mdie_core::remote::{run_remote_worker, WorkerExit};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn main() {
    let code = run();
    // Flush the flight recorder (if `run` started one) before the process
    // dies; a no-op when no trace session is active.
    p2mdie_obs::trace::finish();
    std::process::exit(code);
}

fn usage() -> i32 {
    eprintln!("usage: p2mdie-worker --connect HOST:PORT --rank N [--timeout-secs N]");
    1
}

fn run() -> i32 {
    let mut connect: Option<String> = None;
    let mut rank: Option<usize> = None;
    let mut timeout = Duration::from_secs(60);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| eprintln!("missing value for {what}"))
        };
        match arg.as_str() {
            "--connect" => match take("--connect") {
                Ok(v) => connect = Some(v),
                Err(()) => return usage(),
            },
            "--rank" => match take("--rank").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) => rank = Some(v),
                _ => return usage(),
            },
            "--timeout-secs" => match take("--timeout-secs").map(|v| v.parse::<u64>()) {
                Ok(Ok(v)) => timeout = Duration::from_secs(v),
                _ => return usage(),
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(connect), Some(rank)) = (connect, rank) else {
        return usage();
    };
    if rank == 0 {
        eprintln!("rank 0 is the master; worker ranks start at 1");
        return usage();
    }

    // Flight recorder: stream this rank's span/event records to the
    // per-rank JSONL file the master's end-of-run merge looks for.
    if let Ok(base) = std::env::var("P2MDIE_TRACE") {
        p2mdie_obs::trace::start(p2mdie_obs::trace::TraceConfig {
            jsonl_path: Some(p2mdie_cluster::net::trace_rank_path(&base, rank).into()),
            ..Default::default()
        });
    }

    let (transport, model) = match worker_connect(&connect, rank, timeout) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("worker rank {rank}: connecting to {connect}: {e}");
            return 2;
        }
    };
    let size = transport.size();

    match parse_test_injection(rank) {
        Some(Injection::Exit) => {
            eprintln!("worker rank {rank}: injected early exit");
            3
        }
        Some(Injection::BadFrame) => {
            let mut ep =
                Endpoint::from_parts(rank, size, transport, model, TrafficStats::new(size));
            // A length prefix beyond MAX_FRAME: unambiguously malformed on
            // the first four bytes.
            let garbage = 0xFFFF_FFFFu32.to_le_bytes();
            ep.transport_mut().send_raw_bytes(0, &garbage);
            eprintln!("worker rank {rank}: injected malformed frame");
            3
        }
        Some(Injection::Stall) => {
            eprintln!("worker rank {rank}: injected stall");
            // Go silent without dying: every link stays open, nothing is
            // sent or received, and only the spawner's deadline reaps us.
            loop {
                std::thread::sleep(Duration::from_secs(60));
            }
        }
        Some(Injection::ExitAfter(n)) => {
            let wrapped = ExitAfter {
                inner: transport,
                rank,
                remaining: n,
            };
            let ep = Endpoint::from_parts(rank, size, wrapped, model, TrafficStats::new(size));
            serve(rank, ep, |t| &mut t.inner)
        }
        None => {
            let ep = Endpoint::from_parts(rank, size, transport, model, TrafficStats::new(size));
            serve(rank, ep, |t| t)
        }
    }
}

/// Runs the worker protocol to completion on `ep`, then sends the shutdown
/// report over the underlying TCP transport (`report_via` peels any
/// injection wrapper off).
fn serve<T: Transport>(
    rank: usize,
    mut ep: Endpoint<T>,
    report_via: impl FnOnce(&mut T) -> &mut TcpTransport,
) -> i32 {
    match catch_unwind(AssertUnwindSafe(|| run_remote_worker(&mut ep))) {
        Ok(WorkerExit::Finished) => {
            let report = WorkerReport {
                vtime: ep.now(),
                steps: ep.compute_steps(),
                sends: ep.stats().send_row(rank),
                recovery_bytes: ep.stats().recovery_bytes(),
                recovery_messages: ep.stats().recovery_messages(),
                constraint_bytes: ep.stats().constraint_bytes(),
                constraint_messages: ep.stats().constraint_messages(),
            };
            if !report_via(ep.transport_mut()).send_report(&report) {
                eprintln!("worker rank {rank}: master gone before the shutdown report");
            }
            0
        }
        Ok(WorkerExit::IdleDisconnect) => {
            // The master vanished while we sat idle between jobs: no report
            // to send (the link is gone) and nothing mid-flight was lost.
            eprintln!("worker rank {rank}: master disconnected while idle between jobs");
            IDLE_DISCONNECT_EXIT
        }
        Err(payload) => {
            if let Some(p) = payload.downcast_ref::<Poisoned>() {
                eprintln!("worker rank {rank}: poisoned by rank {}", p.origin);
                return 102;
            }
            let message = panic_text(&*payload);
            ep.broadcast_poison();
            eprintln!("worker rank {rank} panicked: {message}");
            101
        }
    }
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(cf) = e.downcast_ref::<CommFailure>() {
        return cf.to_string();
    }
    if let Some(s) = e.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = e.downcast_ref::<String>() {
        return s.clone();
    }
    "<non-string panic payload>".to_owned()
}

enum Injection {
    Exit,
    BadFrame,
    Stall,
    ExitAfter(u64),
}

/// Parses `P2MDIE_TEST_FAIL` (see the module docs) and returns the first
/// injection naming this rank, if any.
fn parse_test_injection(rank: usize) -> Option<Injection> {
    let spec = std::env::var("P2MDIE_TEST_FAIL").ok()?;
    for part in spec.split(',') {
        let Some((mode, rest)) = part.trim().split_once(':') else {
            continue;
        };
        let (target, arg) = match rest.split_once(':') {
            Some((t, a)) => (t, Some(a)),
            None => (rest, None),
        };
        if target.parse::<usize>() != Ok(rank) {
            continue;
        }
        return Some(match (mode, arg) {
            ("exit", None) => Injection::Exit,
            ("badframe", None) => Injection::BadFrame,
            ("stall", None) => Injection::Stall,
            ("exit-after", Some(n)) => match n.parse::<u64>() {
                Ok(n) => Injection::ExitAfter(n),
                Err(_) => {
                    eprintln!("worker rank {rank}: bad exit-after count `{n}`");
                    Injection::Exit
                }
            },
            (other, _) => {
                eprintln!("worker rank {rank}: unknown injection `{other}`");
                Injection::Exit
            }
        });
    }
    None
}

/// Transport wrapper for `exit-after:<rank>:<n>`: passes traffic through
/// untouched until `n` messages have been received, then kills the whole
/// process at the next receive — an abrupt mid-run death (no poison, no
/// report, links reset by the OS) at a deterministic protocol point.
struct ExitAfter {
    inner: TcpTransport,
    rank: usize,
    remaining: u64,
}

impl Transport for ExitAfter {
    fn send(&mut self, to: usize, env: Envelope) -> bool {
        self.inner.send(to, env)
    }

    fn recv(&mut self) -> TransportEvent {
        if self.remaining == 0 {
            eprintln!("worker rank {}: injected mid-run death", self.rank);
            std::process::exit(3);
        }
        let ev = self.inner.recv();
        if matches!(ev, TransportEvent::Envelope(_)) {
            self.remaining -= 1;
        }
        ev
    }
}
