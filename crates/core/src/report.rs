//! Run reports: the numbers the paper's tables are made of, plus the
//! pipeline trace rendering that reproduces Figures 3–4 as ASCII Gantt
//! charts of real executions.

use crate::master::{AcceptedRule, EpochTrace};
use p2mdie_logic::clause::Clause;
use p2mdie_logic::symbol::SymbolTable;
use std::fmt::Write as _;
use std::time::Duration;

/// Report of one parallel (p²-mdie) run.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// Workers used (`p`).
    pub workers: usize,
    /// The induced theory.
    pub theory: Vec<AcceptedRule>,
    /// Epochs executed (Table 5).
    pub epochs: u32,
    /// Positive examples set aside without a covering rule.
    pub set_aside: u32,
    /// Virtual execution time at the master, in seconds — `T(p)` of
    /// Tables 2–3.
    pub vtime: f64,
    /// Final virtual clocks of the workers.
    pub worker_vtimes: Vec<f64>,
    /// Total communication in bytes (Table 4 is `megabytes()`).
    pub total_bytes: u64,
    /// Total messages exchanged.
    pub total_messages: u64,
    /// Metered inference steps per worker.
    pub worker_steps: Vec<u64>,
    /// Sends the transport could not deliver (receiver already gone).
    /// Always 0 on a clean run; non-zero makes a lost-message bug visible
    /// in the report instead of silently skewing the traffic numbers.
    pub dropped_sends: u64,
    /// Wall-clock time of the simulation itself (not a paper quantity).
    pub wall: Duration,
    /// Per-epoch pipeline traces.
    pub traces: Vec<EpochTrace>,
    /// True when the master bailed out of an inconsistent state.
    pub stalled: bool,
    /// Ranks that died mid-run and were recovered from, in death order
    /// (empty unless the run used `RecoveryPolicy::Repartition`).
    pub rank_losses: Vec<u32>,
    /// Bytes spent on the recovery protocol itself — a labelled subset of
    /// `total_bytes`, so reports can state what the fault added.
    pub recovery_bytes: u64,
    /// Messages spent on the recovery protocol (subset of
    /// `total_messages`).
    pub recovery_messages: u64,
    /// Bytes spent broadcasting pruning constraints between workers — a
    /// labelled subset of `total_bytes`, non-zero only under
    /// [`Strategy::ConstraintDriven`](crate::strategy::Strategy) with two
    /// or more ranks.
    pub constraint_bytes: u64,
    /// Messages spent on constraint broadcasts (subset of
    /// `total_messages`).
    pub constraint_messages: u64,
}

impl ParallelReport {
    /// Communication volume in MBytes (decimal, as the paper reports).
    pub fn megabytes(&self) -> f64 {
        self.total_bytes as f64 / 1.0e6
    }

    /// The learned clauses.
    pub fn clauses(&self) -> Vec<Clause> {
        self.theory.iter().map(|r| r.clause.clone()).collect()
    }
}

/// Per-job resource accounting, split out of the global run report.
///
/// A resident [`Service`](crate::scheduler::Service) multiplexes many jobs
/// over one standing mesh, so the mesh-lifetime totals (the numbers
/// [`ParallelReport`] carries) stop being attributable to any single
/// request. The scheduler instead snapshots the master's clock, traffic
/// counters, and step counter around each job and reports the deltas here;
/// worker steps arrive per job in the
/// [`Msg::JobResult`](crate::protocol::Msg::JobResult) drain.
///
/// On a TCP mesh the byte/message deltas are measured at the master's
/// endpoint, so they cover everything the master sent plus everything it
/// received; worker-to-worker pipeline traffic of a `RuleSearch` or
/// learning job is merged into the global totals only at mesh shutdown and
/// is *not* split per job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobAccounting {
    /// Virtual time the job occupied the master, in seconds (clock delta
    /// from dispatch to the end of the drain).
    pub vtime: f64,
    /// Master-side inference steps metered to this job.
    pub master_steps: u64,
    /// Per-worker inference steps, indexed by rank − 1 (from the
    /// `JobResult` replies).
    pub worker_steps: Vec<u64>,
    /// Bytes through the master's endpoint while the job ran.
    pub bytes: u64,
    /// Messages through the master's endpoint while the job ran.
    pub messages: u64,
}

/// Report of one sequential (Figure 1) run.
#[derive(Clone, Debug)]
pub struct SequentialReport {
    /// The induced theory.
    pub theory: Vec<Clause>,
    /// Epochs (= rules attempted).
    pub epochs: u32,
    /// Examples set aside.
    pub set_aside: u32,
    /// Virtual execution time, `T(1) = steps × t_step`.
    pub vtime: f64,
    /// Total metered inference steps.
    pub steps: u64,
    /// Wall-clock time of the simulation itself.
    pub wall: Duration,
}

/// Renders one epoch's pipeline activity as an ASCII Gantt chart — the
/// reproduction of the paper's Figures 3–4, generated from a real run
/// instead of drawn by hand.
///
/// Each row is a pipeline (by origin); each segment shows the worker that
/// executed the stage and the number of rules flowing out of it.
pub fn render_pipeline_trace(trace: &EpochTrace, _syms: &SymbolTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "epoch {} — {} pipelines, bag {} rules, {} accepted",
        trace.epoch,
        trace.pipelines.len(),
        trace.bag_size,
        trace.accepted
    );

    // Time scale across all stages of the epoch.
    let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in &trace.pipelines {
        for s in p {
            t0 = t0.min(s.start);
            t1 = t1.max(s.end);
        }
    }
    if !t0.is_finite() || t1 <= t0 {
        let _ = writeln!(out, "  (no stage activity)");
        return out;
    }
    const COLS: usize = 60;
    let scale = COLS as f64 / (t1 - t0);

    for (i, stages) in trace.pipelines.iter().enumerate() {
        let mut row = [b' '; COLS + 1];
        for s in stages {
            let a = ((s.start - t0) * scale).floor() as usize;
            let b = (((s.end - t0) * scale).ceil() as usize).clamp(a + 1, COLS);
            let ch = b'0' + (s.worker % 10);
            for c in row.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        let _ = writeln!(
            out,
            "  pipeline {:>2} |{}| {}",
            i + 1,
            String::from_utf8_lossy(&row[..COLS]),
            stages
                .iter()
                .map(|s| format!("w{}:{}→{}", s.worker, s.rules_in, s.rules_out))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    let _ = writeln!(
        out,
        "  (digits = worker executing the stage; span {:.3}s..{:.3}s virtual)",
        t0, t1
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::StageTrace;

    fn trace() -> EpochTrace {
        EpochTrace {
            epoch: 1,
            pipelines: vec![
                vec![
                    StageTrace {
                        worker: 1,
                        step: 1,
                        start: 0.0,
                        end: 1.0,
                        rules_in: 0,
                        rules_out: 3,
                    },
                    StageTrace {
                        worker: 2,
                        step: 2,
                        start: 1.2,
                        end: 2.0,
                        rules_in: 3,
                        rules_out: 2,
                    },
                ],
                vec![
                    StageTrace {
                        worker: 2,
                        step: 1,
                        start: 0.0,
                        end: 0.8,
                        rules_in: 0,
                        rules_out: 1,
                    },
                    StageTrace {
                        worker: 1,
                        step: 2,
                        start: 1.0,
                        end: 1.7,
                        rules_in: 1,
                        rules_out: 1,
                    },
                ],
            ],
            bag_size: 3,
            accepted: 2,
        }
    }

    #[test]
    fn gantt_renders_every_pipeline() {
        let s = render_pipeline_trace(&trace(), &SymbolTable::new());
        assert!(s.contains("pipeline  1"));
        assert!(s.contains("pipeline  2"));
        assert!(s.contains("w1:0→3"));
        assert!(s.contains("w2:3→2"));
        // Worker digits appear in the chart body.
        assert!(s.contains('1') && s.contains('2'));
    }

    #[test]
    fn empty_trace_does_not_panic() {
        let t = EpochTrace {
            epoch: 3,
            pipelines: vec![vec![], vec![]],
            bag_size: 0,
            accepted: 0,
        };
        let s = render_pipeline_trace(&t, &SymbolTable::new());
        assert!(s.contains("no stage activity"));
    }

    #[test]
    fn megabytes_conversion() {
        let r = ParallelReport {
            workers: 2,
            theory: vec![],
            epochs: 0,
            set_aside: 0,
            vtime: 0.0,
            worker_vtimes: vec![],
            total_bytes: 3_000_000,
            total_messages: 10,
            worker_steps: vec![],
            dropped_sends: 0,
            wall: Duration::ZERO,
            traces: vec![],
            stalled: false,
            rank_losses: vec![],
            recovery_bytes: 0,
            recovery_messages: 0,
            constraint_bytes: 0,
            constraint_messages: 0,
        };
        assert!((r.megabytes() - 3.0).abs() < 1e-12);
    }
}
