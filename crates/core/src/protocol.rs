//! The p²-mdie wire protocol.
//!
//! One message enum covers the whole algorithm (paper Figures 5–7):
//! `LoadExamples` / `StartPipeline` / `PipelineStage` / `RulesFound` /
//! `Evaluate` / `EvalResult` / `MarkCovered` / `RetireSeed` / `SeedRetired` /
//! `Stop`, plus the protocol-v5 job-control frames ([`Msg::SubmitJob`] /
//! [`Msg::JobAccepted`] / [`Msg::JobResult`] / [`Msg::CancelJob`]) that let
//! a *resident* mesh run many jobs back to back (see [`crate::scheduler`]),
//! and the protocol-v6 introspection pair ([`Msg::MetricsQuery`] /
//! [`Msg::MetricsReport`]) that lets the master pull live per-worker metric
//! snapshots between jobs. Protocol v7 adds the strategy seam: the
//! worker-to-worker [`Msg::Constraint`] broadcast (proven-dead lattice
//! regions exchanged by the constraint-driven strategy) and the
//! [`Strategy`] + strategy-seed fields on [`WorkerConfig`], so one
//! resident mesh can multiplex jobs of different strategies.
//! Every payload is encoded through the byte-accurate
//! [`Wire`] codec, so the traffic statistics reproduce Table 4 exactly as
//! "bytes that would have crossed the network".
//!
//! Terms reference [`p2mdie_logic::symbol::SymbolId`]s shared by all ranks
//! — the analogue of the
//! paper's assumption that "data can be shared by all processors through a
//! distributed file system", under which every node agrees on every name.
//!
//! Clauses travel in their *plain* (uncompiled) form: `PredId`s, term-arena
//! ids and posting lists are rank-local artifacts of each worker's
//! [`p2mdie_logic::kb::KnowledgeBase`], so a shipped rule is recompiled on
//! arrival by the receiver's `assert_rule` (dispatch resolution is one map
//! probe per body literal — negligible next to the wire transfer itself).
//! The one exception is [`Msg::KbSnapshot`]: the whole *compiled*
//! background KB — arena, columnar facts, posting lists, compiled rules —
//! travels once, master → worker, so worker startup is a single transfer
//! instead of a per-rank rebuild (see [`p2mdie_logic::snapshot`]).
//!
//! Terms, literals, clauses, and snapshots encode through the `Wire` impls
//! in [`p2mdie_cluster::codec`] (byte layouts unchanged); only the
//! ILP-specific payloads (bottom clauses, scored rules) are encoded here.

use crate::strategy::Strategy;
use bytes::{BufMut, Bytes, BytesMut};
use p2mdie_cluster::codec::{DecodeError, Wire};
use p2mdie_cluster::comm::{CommFailure, Endpoint};
use p2mdie_cluster::transport::Transport;
use p2mdie_ilp::bottom::{BottomClause, BottomLiteral};
use p2mdie_ilp::modes::{ModeArg, ModeDecl, ModeSet};
use p2mdie_ilp::refine::RuleShape;
use p2mdie_ilp::search::ScoredRule;
use p2mdie_ilp::settings::{ScoreFn, Settings, Width};
use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::prover::ProofLimits;
use p2mdie_logic::snapshot::KbSnapshot;
use p2mdie_logic::symbol::SymbolId;
use p2mdie_obs::{MetricEntry, MetricValue, MetricsSnapshot};

// ---------------------------------------------------------------------------
// Wire helpers for the ILP-crate payloads (foreign trait + foreign types,
// so these stay free functions).
// ---------------------------------------------------------------------------

fn encode_bottom(b: &BottomClause, buf: &mut BytesMut) {
    b.head.encode(buf);
    b.head_vars.encode(buf);
    (b.lits.len() as u32).encode(buf);
    for bl in &b.lits {
        bl.lit.encode(buf);
        bl.inputs.encode(buf);
        bl.outputs.encode(buf);
        bl.depth.encode(buf);
    }
    b.num_vars.encode(buf);
    b.example.encode(buf);
    // `steps` is deliberately not shipped: it is rank-local accounting.
}

fn decode_bottom(buf: &mut Bytes) -> Result<BottomClause, DecodeError> {
    let head = Literal::decode(buf)?;
    let head_vars = Vec::<u32>::decode(buf)?;
    let n = u32::decode(buf)? as usize;
    if n > buf.len() {
        return Err(DecodeError::new("bottom body length"));
    }
    let mut lits = Vec::with_capacity(n);
    for _ in 0..n {
        let lit = Literal::decode(buf)?;
        let inputs = Vec::<u32>::decode(buf)?;
        let outputs = Vec::<u32>::decode(buf)?;
        let depth = u32::decode(buf)?;
        lits.push(BottomLiteral {
            lit,
            inputs,
            outputs,
            depth,
        });
    }
    let num_vars = u32::decode(buf)?;
    let example = Literal::decode(buf)?;
    Ok(BottomClause {
        head,
        head_vars,
        lits,
        num_vars,
        example,
        steps: 0,
    })
}

fn encode_mode_arg(a: &ModeArg, buf: &mut BytesMut) {
    let (tag, ty) = match a {
        ModeArg::Input(t) => (0u8, t),
        ModeArg::Output(t) => (1u8, t),
        ModeArg::Const(t) => (2u8, t),
    };
    buf.put_u8(tag);
    ty.0.encode(buf);
}

fn decode_mode_arg(buf: &mut Bytes) -> Result<ModeArg, DecodeError> {
    let tag = u8::decode(buf)?;
    let ty = SymbolId(u32::decode(buf)?);
    Ok(match tag {
        0 => ModeArg::Input(ty),
        1 => ModeArg::Output(ty),
        2 => ModeArg::Const(ty),
        _ => return Err(DecodeError::new("mode arg tag")),
    })
}

fn encode_mode_decl(m: &ModeDecl, buf: &mut BytesMut) {
    m.recall.encode(buf);
    m.pred.0.encode(buf);
    (m.args.len() as u32).encode(buf);
    for a in &m.args {
        encode_mode_arg(a, buf);
    }
}

fn decode_mode_decl(buf: &mut Bytes) -> Result<ModeDecl, DecodeError> {
    let recall = u32::decode(buf)?;
    let pred = SymbolId(u32::decode(buf)?);
    let n = u32::decode(buf)? as usize;
    if n > buf.len() {
        return Err(DecodeError::new("mode arg count"));
    }
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(decode_mode_arg(buf)?);
    }
    Ok(ModeDecl { recall, pred, args })
}

fn encode_modes(m: &ModeSet, buf: &mut BytesMut) {
    encode_mode_decl(&m.head, buf);
    (m.body.len() as u32).encode(buf);
    for d in &m.body {
        encode_mode_decl(d, buf);
    }
}

fn decode_modes(buf: &mut Bytes) -> Result<ModeSet, DecodeError> {
    let head = decode_mode_decl(buf)?;
    let n = u32::decode(buf)? as usize;
    if n > buf.len() {
        return Err(DecodeError::new("mode body count"));
    }
    let mut body = Vec::with_capacity(n);
    for _ in 0..n {
        body.push(decode_mode_decl(buf)?);
    }
    Ok(ModeSet { head, body })
}

fn encode_settings(s: &Settings, buf: &mut BytesMut) {
    s.noise.encode(buf);
    s.min_pos.encode(buf);
    s.max_body.encode(buf);
    s.max_nodes.encode(buf);
    s.default_recall.encode(buf);
    s.max_var_depth.encode(buf);
    s.max_bottom_literals.encode(buf);
    s.proof.max_depth.encode(buf);
    s.proof.max_steps.encode(buf);
    buf.put_u8(match s.score {
        ScoreFn::Coverage => 0,
        ScoreFn::Compression => 1,
    });
    s.good_cap.encode(buf);
    s.eval_threads.encode(buf);
}

fn decode_settings(buf: &mut Bytes) -> Result<Settings, DecodeError> {
    Ok(Settings {
        noise: u32::decode(buf)?,
        min_pos: u32::decode(buf)?,
        max_body: usize::decode(buf)?,
        max_nodes: usize::decode(buf)?,
        default_recall: u32::decode(buf)?,
        max_var_depth: u32::decode(buf)?,
        max_bottom_literals: usize::decode(buf)?,
        proof: ProofLimits {
            max_depth: u32::decode(buf)?,
            max_steps: u64::decode(buf)?,
        },
        score: match u8::decode(buf)? {
            0 => ScoreFn::Coverage,
            1 => ScoreFn::Compression,
            _ => return Err(DecodeError::new("score fn tag")),
        },
        good_cap: usize::decode(buf)?,
        eval_threads: usize::decode(buf)?,
    })
}

fn encode_width(w: &Width, buf: &mut BytesMut) {
    match w {
        Width::Unlimited => buf.put_u8(0),
        Width::Limit(n) => {
            buf.put_u8(1);
            n.encode(buf);
        }
    }
}

fn decode_width(buf: &mut Bytes) -> Result<Width, DecodeError> {
    Ok(match u8::decode(buf)? {
        0 => Width::Unlimited,
        1 => Width::Limit(u32::decode(buf)?),
        _ => return Err(DecodeError::new("width tag")),
    })
}

fn encode_scored(r: &ScoredRule, buf: &mut BytesMut) {
    r.shape.lits.encode(buf);
    r.pos.encode(buf);
    r.neg.encode(buf);
    r.score.encode(buf);
}

fn decode_scored(buf: &mut Bytes) -> Result<ScoredRule, DecodeError> {
    let lits = Vec::<u32>::decode(buf)?;
    let pos = u32::decode(buf)?;
    let neg = u32::decode(buf)?;
    let score = i64::decode(buf)?;
    Ok(ScoredRule {
        shape: RuleShape { lits },
        pos,
        neg,
        score,
    })
}

fn encode_shapes(shapes: &[RuleShape], buf: &mut BytesMut) {
    (shapes.len() as u32).encode(buf);
    for s in shapes {
        s.lits.encode(buf);
    }
}

fn decode_shapes(buf: &mut Bytes) -> Result<Vec<RuleShape>, DecodeError> {
    let n = u32::decode(buf)? as usize;
    if n > buf.len() {
        return Err(DecodeError::new("constraint shape count"));
    }
    let mut shapes = Vec::with_capacity(n);
    for _ in 0..n {
        shapes.push(RuleShape {
            lits: Vec::<u32>::decode(buf)?,
        });
    }
    Ok(shapes)
}

// ---------------------------------------------------------------------------
// Metric snapshots (protocol v6 introspection). Free functions because both
// `Wire` and `MetricsSnapshot` are foreign here.
// ---------------------------------------------------------------------------

fn encode_metrics(snap: &MetricsSnapshot, buf: &mut BytesMut) {
    (snap.entries.len() as u32).encode(buf);
    for e in &snap.entries {
        e.name.encode(buf);
        match &e.value {
            MetricValue::Counter(n) => {
                buf.put_u8(0);
                n.encode(buf);
            }
            MetricValue::Gauge(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                buf.put_u8(2);
                count.encode(buf);
                sum.encode(buf);
                buckets.encode(buf);
            }
        }
    }
}

fn decode_metrics(buf: &mut Bytes) -> Result<MetricsSnapshot, DecodeError> {
    let n = u32::decode(buf)? as usize;
    if n > buf.len() {
        return Err(DecodeError::new("metrics entry count"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name = String::decode(buf)?;
        let value = match u8::decode(buf)? {
            0 => MetricValue::Counter(u64::decode(buf)?),
            1 => MetricValue::Gauge(f64::decode(buf)?),
            2 => MetricValue::Histogram {
                count: u64::decode(buf)?,
                sum: u64::decode(buf)?,
                buckets: Vec::<(u8, u64)>::decode(buf)?,
            },
            _ => return Err(DecodeError::new("metric value tag")),
        };
        entries.push(MetricEntry { name, value });
    }
    Ok(MetricsSnapshot { entries })
}

// ---------------------------------------------------------------------------
// Pipeline traces (raw material for the paper's Figures 3–4).
// ---------------------------------------------------------------------------

/// One pipeline stage's execution record, carried along with the token so
/// the master can reconstruct the pipeline diagram of Figures 3–4.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTrace {
    /// Worker rank that executed the stage.
    pub worker: u8,
    /// Stage number (1-based).
    pub step: u8,
    /// Virtual time when the stage started.
    pub start: f64,
    /// Virtual time when the stage finished.
    pub end: f64,
    /// Rules received as search seeds.
    pub rules_in: u32,
    /// Rules forwarded to the next stage (after the width cut).
    pub rules_out: u32,
}

impl Wire for StageTrace {
    fn encode(&self, buf: &mut BytesMut) {
        self.worker.encode(buf);
        self.step.encode(buf);
        self.start.encode(buf);
        self.end.encode(buf);
        self.rules_in.encode(buf);
        self.rules_out.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        Ok(StageTrace {
            worker: u8::decode(buf)?,
            step: u8::decode(buf)?,
            start: f64::decode(buf)?,
            end: f64::decode(buf)?,
            rules_in: u32::decode(buf)?,
            rules_out: u32::decode(buf)?,
        })
    }
}

/// A pipeline token travelling between stages: the bottom clause built by
/// the origin worker, the good rules found so far, and the trace.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineToken {
    /// Worker rank (1-based) whose seed example started this pipeline.
    pub origin: u8,
    /// Stage the *receiver* must execute (2-based when travelling).
    pub step: u8,
    /// The ⊥e the whole pipeline searches under; `None` when the origin had
    /// no live example (an empty token that just keeps the schedule static).
    pub bottom: Option<BottomClause>,
    /// Rules found so far (ranked by local score at the previous stage).
    pub rules: Vec<ScoredRule>,
    /// Per-stage execution records.
    pub trace: Vec<StageTrace>,
}

impl Wire for PipelineToken {
    fn encode(&self, buf: &mut BytesMut) {
        self.origin.encode(buf);
        self.step.encode(buf);
        match &self.bottom {
            None => buf.put_u8(0),
            Some(b) => {
                buf.put_u8(1);
                encode_bottom(b, buf);
            }
        }
        (self.rules.len() as u32).encode(buf);
        for r in &self.rules {
            encode_scored(r, buf);
        }
        self.trace.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let origin = u8::decode(buf)?;
        let step = u8::decode(buf)?;
        let bottom = match u8::decode(buf)? {
            0 => None,
            1 => Some(decode_bottom(buf)?),
            _ => return Err(DecodeError::new("token bottom tag")),
        };
        let n = u32::decode(buf)? as usize;
        if n > buf.len() {
            return Err(DecodeError::new("token rule count"));
        }
        let mut rules = Vec::with_capacity(n);
        for _ in 0..n {
            rules.push(decode_scored(buf)?);
        }
        let trace = Vec::<StageTrace>::decode(buf)?;
        Ok(PipelineToken {
            origin,
            step,
            bottom,
            rules,
            trace,
        })
    }
}

// ---------------------------------------------------------------------------
// Remote-worker bootstrap payloads.
// ---------------------------------------------------------------------------

/// Which protocol loop a bootstrapped worker process must run.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerRole {
    /// The p²-mdie pipelined worker (paper Figure 6).
    Pipeline {
        /// Pipeline width `W`.
        width: Width,
        /// §4.1 repartitioning mode.
        repartition: bool,
    },
    /// The coverage-parallel baseline worker (paper §6).
    Coverage,
}

/// Everything a *remote* worker process needs, beyond the compiled KB
/// (which travels separately as [`Msg::KbSnapshot`]), to reconstruct the
/// exact `WorkerContext` an in-process worker thread is handed directly:
/// the language bias, the search constraints, and its role.
///
/// Symbol ids inside the modes are the master's; they stay valid on the
/// worker because the KB snapshot ships the master's *complete* symbol
/// dictionary and the worker restores it into a fresh table (id-preserving
/// path) before anything else is interned.
///
/// The same payload travels inside [`Msg::SubmitJob`] for *resident*
/// workers, where it reconfigures the rank per job over the already-adopted
/// KB (this type was called `JobSpec` before the job layer in
/// [`crate::job`] claimed that name; the tag-13 byte layout is unchanged).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerConfig {
    /// The worker loop to run.
    pub role: WorkerRole,
    /// Language bias (master's symbol ids).
    pub modes: ModeSet,
    /// Search constraints, with `eval_threads` already set to this rank's
    /// fair share of the machine.
    pub settings: Settings,
    /// Which parallelization strategy this rank runs (protocol v7). Only
    /// meaningful for `Pipeline`-role learning work; everything else runs
    /// [`Strategy::DataPipeline`] semantics regardless.
    pub strategy: Strategy,
    /// Seed salting the strategy's lattice slices and exploration orders
    /// (distinct from the example-partition seed, which stays master-side).
    pub strategy_seed: u64,
}

impl Wire for WorkerConfig {
    fn encode(&self, buf: &mut BytesMut) {
        match &self.role {
            WorkerRole::Pipeline { width, repartition } => {
                buf.put_u8(0);
                encode_width(width, buf);
                repartition.encode(buf);
            }
            WorkerRole::Coverage => buf.put_u8(1),
        }
        encode_modes(&self.modes, buf);
        encode_settings(&self.settings, buf);
        buf.put_u8(self.strategy.tag());
        self.strategy_seed.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let role = match u8::decode(buf)? {
            0 => WorkerRole::Pipeline {
                width: decode_width(buf)?,
                repartition: bool::decode(buf)?,
            },
            1 => WorkerRole::Coverage,
            _ => return Err(DecodeError::new("worker role tag")),
        };
        let modes = decode_modes(buf)?;
        let settings = decode_settings(buf)?;
        let strategy =
            Strategy::from_tag(u8::decode(buf)?).ok_or(DecodeError::new("strategy tag"))?;
        Ok(WorkerConfig {
            role,
            modes,
            settings,
            strategy,
            strategy_seed: u64::decode(buf)?,
        })
    }
}

// ---------------------------------------------------------------------------
// The message enum.
// ---------------------------------------------------------------------------

impl Msg {
    /// Receives and decodes the next message from rank `from`, panicking
    /// with a [`CommFailure`] naming the receiving rank, the source rank,
    /// and what was expected when the frame is malformed *or the link died
    /// under the receive* (a peer exiting early — both arrive as
    /// [`p2mdie_cluster::comm::CommError`] values from `recv_msg`).
    /// Cluster failures then report *which* rank and message died instead
    /// of a bare `unwrap` backtrace; the panic still poisons the run so
    /// every rank unwinds, and the runtimes downcast the payload to build
    /// a rank-tagged `ClusterError`.
    pub fn recv<T: Transport>(ep: &mut Endpoint<T>, from: usize, expected: &str) -> Msg {
        match ep.recv_msg(from) {
            Ok(msg) => msg,
            Err(error) => std::panic::panic_any(CommFailure {
                rank: ep.rank(),
                from,
                expected: expected.to_owned(),
                error,
            }),
        }
    }
}

/// Every message exchanged by the p²-mdie master and workers.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Master → workers: load your subset (the data itself is shared, as in
    /// the paper's distributed-file-system assumption).
    LoadExamples,
    /// Master → worker k: start a pipeline from one of your live examples.
    StartPipeline {
        /// Epoch number (for tracing).
        epoch: u32,
    },
    /// Worker → next worker: the travelling pipeline token.
    PipelineStage(PipelineToken),
    /// Last stage → master: the pipeline's surviving rules, materialized as
    /// clauses (the master has no bottom clause to expand shapes against).
    RulesFound {
        /// Pipeline origin (worker rank).
        origin: u8,
        /// Surviving rules with their final-stage local scores.
        rules: Vec<(Clause, u32, u32)>,
        /// Whether the origin actually had a live seed example.
        had_seed: bool,
        /// The pipeline's trace (for Figures 3–4).
        trace: Vec<StageTrace>,
    },
    /// Master → workers: score these rules on your live subset.
    Evaluate {
        /// Bag contents, in bag order.
        rules: Vec<Clause>,
    },
    /// Worker → master: `(pos, neg)` counts aligned with the `Evaluate`
    /// bag order.
    EvalResult {
        /// Per-rule local coverage counts.
        counts: Vec<(u32, u32)>,
    },
    /// Master → workers: a rule was accepted; remove the positives it
    /// covers and add it to the local background (paper Fig. 6).
    MarkCovered {
        /// The accepted rule.
        rule: Clause,
    },
    /// Master → workers: the epoch made no progress; retire your current
    /// seed example so the run terminates (April sets such examples aside).
    RetireSeed,
    /// Worker → master: how many examples the retire removed (0 or 1).
    SeedRetired {
        /// Removed count.
        removed: u32,
    },
    /// Worker → master: the *local indices* of positives covered by the
    /// last `MarkCovered` rule. Used by the coverage-parallel baseline and
    /// by the repartitioning variant, where the master tracks the global
    /// live set (plain p²-mdie never needs it).
    CoveredIdx {
        /// Local positive-example indices removed from the live set.
        pos: Vec<u32>,
    },
    /// Master → worker: replace your local example subset (the §4.1
    /// repartitioning variant; deliberately expensive — the examples
    /// travel in full).
    NewPartition {
        /// New local positive examples.
        pos: Vec<Literal>,
        /// New local negative examples.
        neg: Vec<Literal>,
    },
    /// Master → workers: the full compiled background KB, built once at the
    /// master and adopted by the worker without re-interning or
    /// re-indexing ([`p2mdie_logic::snapshot::KbSnapshot`]). Sent (when KB
    /// shipping is enabled) before `LoadExamples`, so startup is accounted
    /// in virtual time as one transfer per worker instead of a per-rank
    /// rebuild.
    KbSnapshot(Box<KbSnapshot>),
    /// Master → workers: run over, shut down.
    Stop,
    /// Master → worker (remote bootstrap): the worker configuration — role,
    /// language bias, and settings. In-process workers are handed their
    /// `WorkerContext` directly and never see this message; a worker
    /// *process* reconstructs the identical context from
    /// [`Msg::KbSnapshot`] + `Configure` + [`Msg::LoadPartition`].
    Configure(Box<WorkerConfig>),
    /// Master → worker (remote bootstrap): your example subset, shipped in
    /// full. Distinct from [`Msg::NewPartition`], which is the §4.1
    /// repartitioning protocol *inside* a run; this one happens once at
    /// startup, before `LoadExamples`.
    LoadPartition {
        /// Local positive examples.
        pos: Vec<Literal>,
        /// Local negative examples.
        neg: Vec<Literal>,
    },
    /// Master → workers, before `LoadExamples`: this run may lose ranks —
    /// arm the worker-side recovery protocol (`AbortEpoch` handling, ring
    /// membership tracking, `CoveredIdx` replies). Without it, every
    /// worker runs the exact legacy protocol byte for byte.
    EnableRecovery,
    /// Master → survivors: rank `dead` is gone; abandon the current epoch,
    /// flush in-flight ring traffic, shrink the ring, and ack.
    AbortEpoch {
        /// The dead rank.
        dead: u8,
    },
    /// Worker → (old) ring successor during an epoch abort: everything in
    /// flight from me is before this marker — stop draining.
    EpochFlush,
    /// Worker → master: epoch abort finished, ring shrunk, ready for the
    /// recovery payload.
    AbortAck,
    /// Master → survivor: adopt these orphaned examples (a dead rank's
    /// share) *in addition to* your current subset. The reply protocol
    /// continues with the adopter's local indices extended in sent order.
    AdoptExamples {
        /// Orphaned positive examples.
        pos: Vec<Literal>,
        /// Orphaned negative examples.
        neg: Vec<Literal>,
    },
    /// Master → survivors after a repartition-on-death: re-evaluate the
    /// accepted theory against your (new) live set and reply with one
    /// `CoveredIdx` of everything it covers, so the master's global live
    /// set resynchronizes exactly even if the death raced a `MarkCovered`
    /// round. The rules are *not* re-asserted (survivors already hold
    /// them in their background KB).
    ReplayTheory {
        /// The accepted theory so far, in acceptance order.
        rules: Vec<Clause>,
    },
    /// Master → *resident* worker (protocol v5): bootstrap one job over the
    /// already-adopted KB. Carries everything that differs between jobs —
    /// role, language bias, settings, and this rank's example subset — and
    /// nothing that doesn't (the compiled KB shipped once at service
    /// start). The worker clones its pristine base KB, runs the role loop
    /// until the job's `Stop`, replies [`Msg::JobResult`], and returns to
    /// idle.
    SubmitJob {
        /// Scheduler-assigned job id, echoed on every job-control reply.
        id: u64,
        /// Per-job worker configuration (same payload as `Configure`).
        config: Box<WorkerConfig>,
        /// This rank's positive examples for the job.
        pos: Vec<Literal>,
        /// This rank's negative examples for the job.
        neg: Vec<Literal>,
    },
    /// Resident worker → master: job accepted and about to run.
    /// `queue_free` is the rank's remaining job-queue capacity — the
    /// scheduler's backpressure signal (a rank reporting 0 must not be sent
    /// another `SubmitJob` until a `JobResult` frees a slot).
    JobAccepted {
        /// The accepted job's id.
        id: u64,
        /// Remaining worker-side job-queue slots after this acceptance.
        queue_free: u16,
    },
    /// Resident worker → master: the job's role loop finished; `steps` is
    /// the rank's compute-step delta attributable to this job alone (the
    /// per-job slice of what the one-shot path reports globally).
    JobResult {
        /// The finished job's id.
        id: u64,
        /// Compute steps this rank spent on this job.
        steps: u64,
    },
    /// Master → resident workers: abandon job `id` if it is still queued
    /// worker-side. A rank that already finished (or never queued) the job
    /// treats this as a no-op — cancellation is advisory, never destructive
    /// (a running job's partial theory is never published either way).
    CancelJob {
        /// The cancelled job's id.
        id: u64,
    },
    /// Master → *idle* resident worker (protocol v6): report your live
    /// metric snapshot. Only sent between jobs (the resident idle loop is
    /// the only place a worker is guaranteed to be reading its master
    /// link), so introspection never perturbs a running job's traffic
    /// accounting.
    MetricsQuery,
    /// Resident worker → master: the rank's current
    /// [`p2mdie_obs::MetricsSnapshot`] — endpoint-level vtime/steps/byte
    /// counters plus everything in the rank's registry. Always answered,
    /// even with metrics sampling off (the endpoint-derived entries are
    /// maintained by the protocol itself).
    MetricsReport {
        /// The reporting rank's snapshot.
        snapshot: MetricsSnapshot,
    },
    /// Worker → worker (protocol v7): pruning constraints for the
    /// constraint-driven strategy. The shapes are subtree roots the sender
    /// proved *dead* against the epoch's shared bottom clause (positive
    /// cover below `min_pos`, which specialization cannot recover), so the
    /// receiver may cut every refinement under them. Shape indices are
    /// bottom-clause relative and only meaningful while every rank
    /// saturates the same seed — which the shared-live-set invariant
    /// guarantees; a rank drops its store the moment the seed changes.
    /// Metered in the dedicated constraint row of
    /// [`p2mdie_cluster::TrafficStats`].
    Constraint {
        /// Sending rank.
        origin: u8,
        /// Epoch the shapes' bottom clause belongs to (for tracing).
        epoch: u32,
        /// Proven-dead subtree roots, a generalization antichain.
        shapes: Vec<RuleShape>,
    },
}

impl Wire for Msg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Msg::LoadExamples => buf.put_u8(0),
            Msg::StartPipeline { epoch } => {
                buf.put_u8(1);
                epoch.encode(buf);
            }
            Msg::PipelineStage(tok) => {
                buf.put_u8(2);
                tok.encode(buf);
            }
            Msg::RulesFound {
                origin,
                rules,
                had_seed,
                trace,
            } => {
                buf.put_u8(3);
                origin.encode(buf);
                rules.encode(buf);
                had_seed.encode(buf);
                trace.encode(buf);
            }
            Msg::Evaluate { rules } => {
                buf.put_u8(4);
                rules.encode(buf);
            }
            Msg::EvalResult { counts } => {
                buf.put_u8(5);
                counts.encode(buf);
            }
            Msg::MarkCovered { rule } => {
                buf.put_u8(6);
                rule.encode(buf);
            }
            Msg::RetireSeed => buf.put_u8(7),
            Msg::SeedRetired { removed } => {
                buf.put_u8(8);
                removed.encode(buf);
            }
            Msg::Stop => buf.put_u8(9),
            Msg::CoveredIdx { pos } => {
                buf.put_u8(10);
                pos.encode(buf);
            }
            Msg::NewPartition { pos, neg } => {
                buf.put_u8(11);
                pos.encode(buf);
                neg.encode(buf);
            }
            Msg::KbSnapshot(snap) => {
                buf.put_u8(12);
                snap.encode(buf);
            }
            Msg::Configure(spec) => {
                buf.put_u8(13);
                spec.encode(buf);
            }
            Msg::LoadPartition { pos, neg } => {
                buf.put_u8(14);
                pos.encode(buf);
                neg.encode(buf);
            }
            Msg::EnableRecovery => buf.put_u8(15),
            Msg::AbortEpoch { dead } => {
                buf.put_u8(16);
                buf.put_u8(*dead);
            }
            Msg::EpochFlush => buf.put_u8(17),
            Msg::AbortAck => buf.put_u8(18),
            Msg::AdoptExamples { pos, neg } => {
                buf.put_u8(19);
                pos.encode(buf);
                neg.encode(buf);
            }
            Msg::ReplayTheory { rules } => {
                buf.put_u8(20);
                rules.encode(buf);
            }
            Msg::SubmitJob {
                id,
                config,
                pos,
                neg,
            } => {
                buf.put_u8(21);
                id.encode(buf);
                config.encode(buf);
                pos.encode(buf);
                neg.encode(buf);
            }
            Msg::JobAccepted { id, queue_free } => {
                buf.put_u8(22);
                id.encode(buf);
                queue_free.encode(buf);
            }
            Msg::JobResult { id, steps } => {
                buf.put_u8(23);
                id.encode(buf);
                steps.encode(buf);
            }
            Msg::CancelJob { id } => {
                buf.put_u8(24);
                id.encode(buf);
            }
            Msg::MetricsQuery => buf.put_u8(25),
            Msg::MetricsReport { snapshot } => {
                buf.put_u8(26);
                encode_metrics(snapshot, buf);
            }
            Msg::Constraint {
                origin,
                epoch,
                shapes,
            } => {
                buf.put_u8(27);
                origin.encode(buf);
                epoch.encode(buf);
                encode_shapes(shapes, buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            0 => Msg::LoadExamples,
            1 => Msg::StartPipeline {
                epoch: u32::decode(buf)?,
            },
            2 => Msg::PipelineStage(PipelineToken::decode(buf)?),
            3 => Msg::RulesFound {
                origin: u8::decode(buf)?,
                rules: Vec::<(Clause, u32, u32)>::decode(buf)?,
                had_seed: bool::decode(buf)?,
                trace: Vec::<StageTrace>::decode(buf)?,
            },
            4 => Msg::Evaluate {
                rules: Vec::<Clause>::decode(buf)?,
            },
            5 => Msg::EvalResult {
                counts: Vec::<(u32, u32)>::decode(buf)?,
            },
            6 => Msg::MarkCovered {
                rule: Clause::decode(buf)?,
            },
            7 => Msg::RetireSeed,
            8 => Msg::SeedRetired {
                removed: u32::decode(buf)?,
            },
            9 => Msg::Stop,
            10 => Msg::CoveredIdx {
                pos: Vec::<u32>::decode(buf)?,
            },
            11 => Msg::NewPartition {
                pos: Vec::<Literal>::decode(buf)?,
                neg: Vec::<Literal>::decode(buf)?,
            },
            12 => Msg::KbSnapshot(Box::new(KbSnapshot::decode(buf)?)),
            13 => Msg::Configure(Box::new(WorkerConfig::decode(buf)?)),
            14 => Msg::LoadPartition {
                pos: Vec::<Literal>::decode(buf)?,
                neg: Vec::<Literal>::decode(buf)?,
            },
            15 => Msg::EnableRecovery,
            16 => Msg::AbortEpoch {
                dead: u8::decode(buf)?,
            },
            17 => Msg::EpochFlush,
            18 => Msg::AbortAck,
            19 => Msg::AdoptExamples {
                pos: Vec::<Literal>::decode(buf)?,
                neg: Vec::<Literal>::decode(buf)?,
            },
            20 => Msg::ReplayTheory {
                rules: Vec::<Clause>::decode(buf)?,
            },
            21 => Msg::SubmitJob {
                id: u64::decode(buf)?,
                config: Box::new(WorkerConfig::decode(buf)?),
                pos: Vec::<Literal>::decode(buf)?,
                neg: Vec::<Literal>::decode(buf)?,
            },
            22 => Msg::JobAccepted {
                id: u64::decode(buf)?,
                queue_free: u16::decode(buf)?,
            },
            23 => Msg::JobResult {
                id: u64::decode(buf)?,
                steps: u64::decode(buf)?,
            },
            24 => Msg::CancelJob {
                id: u64::decode(buf)?,
            },
            25 => Msg::MetricsQuery,
            26 => Msg::MetricsReport {
                snapshot: decode_metrics(buf)?,
            },
            27 => Msg::Constraint {
                origin: u8::decode(buf)?,
                epoch: u32::decode(buf)?,
                shapes: decode_shapes(buf)?,
            },
            _ => return Err(DecodeError::new("message tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_cluster::codec::{from_bytes, to_bytes};
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::{Term, F64};

    fn sample_clause(t: &SymbolTable) -> Clause {
        Clause::new(
            Literal::new(t.intern("active"), vec![Term::Var(0)]),
            vec![
                Literal::new(
                    t.intern("atm"),
                    vec![
                        Term::Var(0),
                        Term::Var(1),
                        Term::Sym(t.intern("n")),
                        Term::Float(F64(0.5)),
                    ],
                ),
                Literal::new(t.intern(">="), vec![Term::Var(1), Term::Int(3)]),
            ],
        )
    }

    fn sample_bottom(t: &SymbolTable) -> BottomClause {
        BottomClause {
            head: Literal::new(t.intern("active"), vec![Term::Var(0)]),
            head_vars: vec![0],
            lits: vec![BottomLiteral {
                lit: Literal::new(t.intern("atm"), vec![Term::Var(0), Term::Var(1)]),
                inputs: vec![0],
                outputs: vec![1],
                depth: 1,
            }],
            num_vars: 2,
            example: Literal::new(t.intern("active"), vec![Term::Sym(t.intern("m1"))]),
            steps: 0,
        }
    }

    fn roundtrip(msg: Msg) {
        let b = to_bytes(&msg);
        let back: Msg = from_bytes(b).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn all_message_variants_roundtrip() {
        let t = SymbolTable::new();
        roundtrip(Msg::LoadExamples);
        roundtrip(Msg::StartPipeline { epoch: 3 });
        roundtrip(Msg::PipelineStage(PipelineToken {
            origin: 2,
            step: 3,
            bottom: Some(sample_bottom(&t)),
            rules: vec![ScoredRule {
                shape: RuleShape::from_indices(vec![0, 4]),
                pos: 7,
                neg: 1,
                score: 6,
            }],
            trace: vec![StageTrace {
                worker: 2,
                step: 1,
                start: 0.5,
                end: 1.5,
                rules_in: 0,
                rules_out: 1,
            }],
        }));
        roundtrip(Msg::PipelineStage(PipelineToken {
            origin: 1,
            step: 2,
            bottom: None,
            rules: vec![],
            trace: vec![],
        }));
        roundtrip(Msg::RulesFound {
            origin: 1,
            rules: vec![(sample_clause(&t), 5, 0)],
            had_seed: true,
            trace: vec![],
        });
        roundtrip(Msg::Evaluate {
            rules: vec![sample_clause(&t), sample_clause(&t)],
        });
        roundtrip(Msg::EvalResult {
            counts: vec![(3, 0), (9, 2)],
        });
        roundtrip(Msg::MarkCovered {
            rule: sample_clause(&t),
        });
        roundtrip(Msg::RetireSeed);
        roundtrip(Msg::SeedRetired { removed: 1 });
        roundtrip(Msg::CoveredIdx { pos: vec![0, 5, 9] });
        roundtrip(Msg::NewPartition {
            pos: vec![Literal::new(
                t.intern("active"),
                vec![Term::Sym(t.intern("m1"))],
            )],
            neg: vec![Literal::new(
                t.intern("active"),
                vec![Term::Sym(t.intern("m2"))],
            )],
        });
        roundtrip(Msg::LoadPartition {
            pos: vec![Literal::new(
                t.intern("active"),
                vec![Term::Sym(t.intern("m1"))],
            )],
            neg: vec![],
        });
        roundtrip(Msg::EnableRecovery);
        roundtrip(Msg::AbortEpoch { dead: 2 });
        roundtrip(Msg::EpochFlush);
        roundtrip(Msg::AbortAck);
        roundtrip(Msg::AdoptExamples {
            pos: vec![Literal::new(
                t.intern("active"),
                vec![Term::Sym(t.intern("m3"))],
            )],
            neg: vec![Literal::new(
                t.intern("active"),
                vec![Term::Sym(t.intern("m4"))],
            )],
        });
        roundtrip(Msg::ReplayTheory {
            rules: vec![sample_clause(&t)],
        });
        let modes = p2mdie_ilp::modes::ModeSet::parse(
            &t,
            "active(+mol)",
            &[(8, "atm(+mol, -atom, #elem, -charge)"), (1, "solid")],
        )
        .unwrap();
        for role in [
            WorkerRole::Pipeline {
                width: Width::Limit(7),
                repartition: true,
            },
            WorkerRole::Pipeline {
                width: Width::Unlimited,
                repartition: false,
            },
            WorkerRole::Coverage,
        ] {
            for strategy in Strategy::ALL {
                roundtrip(Msg::Configure(Box::new(WorkerConfig {
                    role: role.clone(),
                    modes: modes.clone(),
                    settings: Settings {
                        noise: 3,
                        score: ScoreFn::Compression,
                        eval_threads: 2,
                        ..Settings::default()
                    },
                    strategy,
                    strategy_seed: 0xDEAD_BEEF_CAFE_F00D,
                })));
            }
        }
        roundtrip(Msg::SubmitJob {
            id: 0x0102_0304_0506_0708,
            config: Box::new(WorkerConfig {
                role: WorkerRole::Coverage,
                modes: modes.clone(),
                settings: Settings::default(),
                strategy: Strategy::SearchPartition,
                strategy_seed: 7,
            }),
            pos: vec![Literal::new(
                t.intern("active"),
                vec![Term::Sym(t.intern("m1"))],
            )],
            neg: vec![Literal::new(
                t.intern("active"),
                vec![Term::Sym(t.intern("m2"))],
            )],
        });
        roundtrip(Msg::JobAccepted {
            id: 9,
            queue_free: 1,
        });
        roundtrip(Msg::JobResult {
            id: 9,
            steps: u64::MAX / 3,
        });
        roundtrip(Msg::CancelJob { id: u64::MAX });
        roundtrip(Msg::MetricsQuery);
        roundtrip(Msg::MetricsReport {
            snapshot: MetricsSnapshot {
                entries: vec![
                    MetricEntry {
                        name: "worker_steps_total".to_owned(),
                        value: MetricValue::Counter(12345),
                    },
                    MetricEntry {
                        name: "worker_vtime_seconds".to_owned(),
                        value: MetricValue::Gauge(7.25),
                    },
                    MetricEntry {
                        name: "prover_batch_occupancy".to_owned(),
                        value: MetricValue::Histogram {
                            count: 4,
                            sum: 11,
                            buckets: vec![(0, 1), (3, 3)],
                        },
                    },
                ],
            },
        });
        roundtrip(Msg::MetricsReport {
            snapshot: MetricsSnapshot::default(),
        });
        roundtrip(Msg::Constraint {
            origin: 3,
            epoch: 12,
            shapes: vec![
                RuleShape::from_indices(vec![0]),
                RuleShape::from_indices(vec![1, 4, 9]),
            ],
        });
        roundtrip(Msg::Constraint {
            origin: 1,
            epoch: 0,
            shapes: vec![],
        });
        roundtrip(Msg::Stop);
    }

    /// Every prefix truncation of a `Constraint` frame decode-fails instead
    /// of panicking or misreading (the shape-count guard catches the
    /// length-prefix lie; the per-shape `Vec<u32>` decodes catch the rest).
    #[test]
    fn truncated_constraint_is_rejected() {
        let bytes = to_bytes(&Msg::Constraint {
            origin: 2,
            epoch: 5,
            shapes: vec![
                RuleShape::from_indices(vec![0, 2, 7]),
                RuleShape::from_indices(vec![3]),
                RuleShape::from_indices(vec![1, 8]),
            ],
        });
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_bytes::<Msg>(bytes.slice(..cut)).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    /// A corrupted shape count (claiming more shapes than bytes remain)
    /// and a corrupted strategy tag are both rejected, not mis-decoded.
    #[test]
    fn corrupt_constraint_payloads_are_rejected() {
        let bytes = to_bytes(&Msg::Constraint {
            origin: 1,
            epoch: 1,
            shapes: vec![RuleShape::from_indices(vec![4])],
        });
        let mut raw = bytes.to_vec();
        // Bytes 1..=4 hold `origin`+`epoch` prefix; the shape count starts
        // after origin (1) + epoch (4) = offset 5. Blow it up.
        raw[5] = 0xFF;
        raw[6] = 0xFF;
        assert!(from_bytes::<Msg>(Bytes::from(raw)).is_err());

        let t = SymbolTable::new();
        let modes = p2mdie_ilp::modes::ModeSet::parse(&t, "active(+mol)", &[(1, "solid")]).unwrap();
        let cfg_bytes = to_bytes(&Msg::Configure(Box::new(WorkerConfig {
            role: WorkerRole::Coverage,
            modes,
            settings: Settings::default(),
            strategy: Strategy::ConstraintDriven,
            strategy_seed: 3,
        })));
        // The strategy tag is the 9th byte from the end (tag + u64 seed).
        let mut raw = cfg_bytes.to_vec();
        let at = raw.len() - 9;
        raw[at] = 200;
        assert!(from_bytes::<Msg>(Bytes::from(raw)).is_err());
    }

    /// The compiled KB travels as one message and the receiver adopts it
    /// without re-interning or re-indexing: identical snapshot on both
    /// sides, identical retrieval plans.
    #[test]
    fn kb_snapshot_message_roundtrips_and_restores() {
        use p2mdie_logic::kb::KnowledgeBase;
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 0..50i64 {
            kb.assert_fact(Literal::new(
                t.intern("atm"),
                vec![Term::Int(i % 5), Term::Int(i), Term::Float(F64(0.25))],
            ));
        }
        kb.assert_rule(sample_clause(&t));
        kb.optimize();
        let snap = kb.to_snapshot();
        let bytes = to_bytes(&Msg::KbSnapshot(Box::new(snap.clone())));
        let Msg::KbSnapshot(arrived) = from_bytes(bytes).unwrap() else {
            panic!("expected KbSnapshot");
        };
        assert_eq!(*arrived, snap);
        let restored = KnowledgeBase::from_snapshot(*arrived, t.clone()).unwrap();
        assert_eq!(restored.to_snapshot(), snap);
        let key = Literal::new(t.intern("atm"), vec![Term::Int(0); 3]).key();
        assert_eq!(
            restored.plan_candidates(key, &[Some(Term::Int(3)), None, None]),
            kb.plan_candidates(key, &[Some(Term::Int(3)), None, None]),
        );
    }

    /// A truncated snapshot frame must decode-fail, not panic or misload.
    #[test]
    fn truncated_kb_snapshot_is_rejected() {
        use p2mdie_logic::kb::KnowledgeBase;
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        kb.assert_fact(Literal::new(t.intern("p"), vec![Term::Int(1)]));
        let bytes = to_bytes(&Msg::KbSnapshot(Box::new(kb.to_snapshot())));
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_bytes::<Msg>(bytes.slice(..cut)).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let mut raw = to_bytes(&Msg::Stop).to_vec();
        raw[0] = 200;
        assert!(from_bytes::<Msg>(Bytes::from(raw)).is_err());
    }

    #[test]
    fn token_sizes_grow_with_rules() {
        let t = SymbolTable::new();
        let mk = |n: usize| {
            Msg::PipelineStage(PipelineToken {
                origin: 1,
                step: 2,
                bottom: Some(sample_bottom(&t)),
                rules: (0..n)
                    .map(|i| ScoredRule {
                        shape: RuleShape::from_indices(vec![i as u32]),
                        pos: 1,
                        neg: 0,
                        score: 1,
                    })
                    .collect(),
                trace: vec![],
            })
        };
        let small = to_bytes(&mk(1)).len();
        let big = to_bytes(&mk(100)).len();
        assert!(
            big > small + 99 * 16,
            "each rule costs at least 16 bytes on the wire"
        );
    }

    /// Rules ship uncompiled; the receiving rank's KB resolves dispatch on
    /// assert (PredIds and arena ids are rank-local, SymbolIds global).
    #[test]
    fn shipped_clause_recompiles_at_receiver() {
        use p2mdie_logic::clause::LitKind;
        let t = SymbolTable::new();
        let rule = sample_clause(&t);
        let bytes = to_bytes(&Msg::MarkCovered { rule: rule.clone() });
        let Msg::MarkCovered { rule: arrived } = from_bytes(bytes).unwrap() else {
            panic!("expected MarkCovered");
        };
        let mut kb = p2mdie_logic::kb::KnowledgeBase::new(t.clone());
        kb.assert_rule(arrived);
        let pid = kb
            .pred_id(rule.head.key())
            .expect("entry created on assert");
        let crule = &kb.rules_compiled(pid)[0];
        assert!(matches!(crule.body[0].kind, LitKind::Pred(_)));
        assert!(matches!(crule.body[1].kind, LitKind::Builtin(_)));
        assert_eq!(crule.var_span, rule.var_span());
    }

    #[test]
    fn term_nesting_roundtrips() {
        let t = SymbolTable::new();
        let deep = Term::app(
            t.intern("f"),
            vec![
                Term::app(t.intern("g"), vec![Term::Var(3), Term::Int(-9)]),
                Term::Float(F64(2.5)),
            ],
        );
        let lit = Literal::new(t.intern("p"), vec![deep]);
        let msg = Msg::MarkCovered {
            rule: Clause::fact(lit),
        };
        roundtrip(msg);
    }
}
