//! `p2mdie-core` — the pipelined data-parallel covering algorithm of
//! Fonseca, Silva, Santos Costa & Camacho, *"A pipelined data-parallel
//! algorithm for ILP"*, IEEE CLUSTER 2005 (the paper's §4).
//!
//! The example set is partitioned evenly over `p` workers; `p` rule
//! searches run simultaneously, each structured as a pipeline of `p`
//! stages that refines candidate rules against one worker's local subset
//! and forwards the best `W` to the next; the master pools the surviving
//! rules, scores them globally, and consumes the bag MDIE-style — several
//! rules per epoch.
//!
//! * [`protocol`] — the wire messages (Figures 5–7 as a protocol);
//! * [`partition`] — seeded random even example partitioning;
//! * [`pipeline`] — one stage of `learn_rule'` (Figure 7);
//! * [`worker`] — the worker script (Figure 6);
//! * [`master`] — the epoch loop and bag consumption (Figure 5);
//! * [`bag`] — the rule bag with global scoring;
//! * [`report`] — run reports and the Figure 3/4 trace renderer;
//! * [`driver`] — `run_parallel` / `run_sequential_timed`;
//! * [`remote`] — multi-process deployment: the remote-worker bootstrap
//!   and the TCP launchers behind `ParallelConfig::with_transport` (the
//!   `p2mdie-worker` binary is this crate's `src/bin/`);
//! * [`job`] — the first-class job layer: what runs on the cluster
//!   (coverage query, rule search, learning run) and its lifecycle;
//! * [`scheduler`] — ILP-as-a-service: a resident mesh (`Service`) that
//!   multiplexes many jobs over one standing cluster, plus the ephemeral
//!   single-job dispatch the one-shot entry points are thin wrappers over;
//! * [`strategy`] — the strategy seam: data-parallel (the paper),
//!   hypothesis-parallel (lattice slicing), and constraint-driven
//!   (pruning-constraint exchange) parallel ILP over one runtime.

pub mod bag;
pub mod baselines;
pub mod driver;
pub mod job;
pub mod master;
pub mod partition;
pub mod pipeline;
pub mod protocol;
pub mod remote;
pub mod report;
pub mod scheduler;
pub mod strategy;
pub mod worker;

pub use bag::{BagRule, RuleBag};
pub use baselines::{
    run_coverage_parallel, run_coverage_parallel_opts, BaselineReport, EvalGranularity,
};
pub use driver::{
    run_parallel, run_sequential_timed, ParallelConfig, RecoveryPolicy, TransportKind,
};
pub use job::{JobId, JobKind, JobOutcome, JobOutput, JobSpec, JobState};
pub use master::{
    run_master, run_master_recovering, ship_kb, AcceptedRule, EpochTrace, MasterOutcome,
};
pub use partition::{partition_examples, Partition};
pub use protocol::{Msg, PipelineToken, StageTrace, WorkerConfig, WorkerRole};
pub use remote::{
    default_worker_bin, run_coverage_parallel_tcp, run_parallel_tcp, run_remote_worker, TcpConfig,
    WorkerExit,
};
pub use report::{render_pipeline_trace, ParallelReport, SequentialReport};
pub use scheduler::{JobHandle, Service, ServiceConfig, ServiceReport, SubmitError};
pub use strategy::{run_strategy_master, run_strategy_worker, Strategy, StrategyWorkerContext};
pub use worker::{run_worker, WorkerContext};
