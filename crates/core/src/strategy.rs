//! The strategy seam: three ways to parallelize one ILP run over the same
//! mesh, protocol, and virtual-time accounting.
//!
//! p²-mdie as published is **data-parallel**: examples are partitioned,
//! every rank searches the full refinement lattice of its own seed, and
//! rules travel a pipeline so each is scored against every subset (Figure
//! 7). That is one point in a design space the cluster-ILP literature maps
//! out more broadly, and this module hosts the other two classic points
//! behind one [`Strategy`] switch:
//!
//! * [`Strategy::DataPipeline`] — the paper's algorithm, untouched. The
//!   seam routes it through the exact pre-seam code path
//!   ([`crate::master::run_master`] / [`crate::worker::run_worker`]), so a
//!   default-strategy run is bit-identical to one that predates the seam
//!   (pinned by `crates/core/tests/strategy_seam.rs`).
//! * [`Strategy::SearchPartition`] — **hypothesis-parallel**: every rank
//!   holds the *full* example set and the ranks split the refinement
//!   lattice itself. The split rides on a structural fact of
//!   [`p2mdie_ilp::refine::RuleShape`]: successors only ever append
//!   strictly larger literal indices, so every non-empty shape keeps its
//!   first literal forever and hashing that first literal
//!   ([`p2mdie_ilp::LatticeSlice`]) yields disjoint, subtree-closed,
//!   collectively exhaustive slices — no shape is searched twice, none is
//!   lost (pinned in `crates/ilp`'s `sliced_searches_union_to_the_full_search`).
//! * [`Strategy::ConstraintDriven`] — **constraint-parallel**: ranks run
//!   independently seeded searches over the shared seed's lattice and
//!   broadcast the *dead* regions they prove (shapes whose positive cover
//!   already fell below `min_pos` — coverage is anti-monotone under
//!   specialization, so the whole subtree under such a shape is dead).
//!   Each epoch runs two search rounds with a constraint exchange between
//!   them: round one explores in a rank-specific deterministic order and
//!   collects dead shapes, the ranks swap them as [`Msg::Constraint`]
//!   broadcasts, and round two searches with the merged
//!   [`p2mdie_ilp::ConstraintStore`] cutting the proven-dead subtrees.
//!   Constraints are bottom-clause relative, so the store is keyed to the
//!   seed example and cleared the moment the seed changes; forgetting
//!   constraints is always sound (a cut is an optimization, never a
//!   correctness requirement).
//!
//! # Determinism contracts
//!
//! All three strategies are deterministic for a fixed
//! (`workers`, `seed`, strategy) triple, in-process and over TCP: every
//! receive names its source rank, exploration orders derive from
//! [`splitmix64`] chains seeded by (strategy seed, epoch, rank, round), and
//! the master breaks rule ties by pool order, which is itself rank-ordered.
//! The non-default strategies replicate the full example set on every rank,
//! so local coverage counts *are* global counts and the master needs no
//! separate evaluation round — one accepted rule per epoch, broadcast as
//! [`Msg::MarkCovered`], keeps every rank's live set bit-identical.
//!
//! # Traffic accounting
//!
//! Constraint broadcasts are metered in a dedicated
//! [`p2mdie_cluster::TrafficStats`] row (`constraint_bytes` /
//! `constraint_messages`), exactly like the recovery row of the
//! self-healing protocol: total traffic still includes them, but reports
//! can say how much of the bill was pruning gossip (surfaced as
//! [`ParallelReport::constraint_bytes`]). Over TCP the workers return their
//! constraint counters in the shutdown report and the master absorbs them.

use crate::driver::{threads_per_worker, ParallelConfig, RecoveryPolicy};
use crate::job::{JobState, Lifecycle};
use crate::master::{ship_kb, AcceptedRule, EpochTrace, MasterOutcome};
use crate::protocol::{Msg, StageTrace, WorkerConfig, WorkerRole};
use crate::report::ParallelReport;
use crate::scheduler::EPHEMERAL_JOB;
use crate::worker::adopt_kb_snapshot;
use p2mdie_cluster::comm::Endpoint;
use p2mdie_cluster::net::run_cluster_tcp;
use p2mdie_cluster::transport::Transport;
use p2mdie_cluster::{run_cluster, ClusterError};
use p2mdie_ilp::bitset::Bitset;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::refine::splitmix64;
use p2mdie_ilp::settings::{Settings, Width};
use p2mdie_ilp::{take_top, ConstraintStore, LatticeSlice, ScoredRule, SearchGuide};
use p2mdie_logic::clause::Clause;
use p2mdie_obs::span;
use std::sync::Mutex;
use std::time::Instant;

/// How the ranks divide one learning run among themselves.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Strategy {
    /// The paper's data-parallel pipelined algorithm (Figure 7): examples
    /// partitioned, full lattice per rank, rules scored by travelling the
    /// pipeline. The default, and byte-for-byte the pre-seam protocol.
    #[default]
    DataPipeline,
    /// Hypothesis-parallel: full example replication, the refinement
    /// lattice split into disjoint per-rank slices by first-literal hash.
    SearchPartition,
    /// Constraint-parallel: full example replication, independently seeded
    /// searches exchanging proven-dead subtrees as lattice cuts.
    ConstraintDriven,
}

impl Strategy {
    /// Every strategy, in wire-tag order (the eval sweep's axis).
    pub const ALL: [Strategy; 3] = [
        Strategy::DataPipeline,
        Strategy::SearchPartition,
        Strategy::ConstraintDriven,
    ];

    /// Table/CLI label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::DataPipeline => "data-pipeline",
            Strategy::SearchPartition => "search-partition",
            Strategy::ConstraintDriven => "constraint-driven",
        }
    }

    /// Wire tag (stable; protocol v7).
    pub fn tag(self) -> u8 {
        match self {
            Strategy::DataPipeline => 0,
            Strategy::SearchPartition => 1,
            Strategy::ConstraintDriven => 2,
        }
    }

    /// Inverse of [`Strategy::tag`].
    pub fn from_tag(tag: u8) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|s| s.tag() == tag)
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Dead shapes a rank offers its peers per exchange. A cap, not a budget:
/// the search may prove more subtrees dead than this, and dropping the
/// excess only costs pruning opportunity, never correctness.
const DEAD_SHAPE_CAP: usize = 64;

/// Everything a non-default-strategy worker owns: its engine, the **full**
/// example set (both non-default strategies replicate data), the width cap
/// on rules returned per epoch, and the strategy with its seed.
pub struct StrategyWorkerContext {
    /// The local ILP engine (the KB grows as rules are accepted).
    pub engine: IlpEngine,
    /// The full example set — replicated, not partitioned.
    pub local: Examples,
    /// Cap on the rules a rank returns per epoch (the paper's `W`).
    pub width: Width,
    /// Which non-default strategy to run.
    pub strategy: Strategy,
    /// Seed salting the lattice slices and the exploration orders.
    pub strategy_seed: u64,
}

impl StrategyWorkerContext {
    /// Bundles a strategy worker context.
    pub fn new(
        engine: IlpEngine,
        local: Examples,
        width: Width,
        strategy: Strategy,
        strategy_seed: u64,
    ) -> Self {
        StrategyWorkerContext {
            engine,
            local,
            width,
            strategy,
            strategy_seed,
        }
    }
}

/// The per-(epoch, rank, round) exploration seed: a [`splitmix64`] chain
/// over the strategy seed, so different ranks (and the two rounds of the
/// constraint-driven epoch) walk the lattice in different — but fully
/// deterministic — orders.
fn explore_seed(strategy_seed: u64, epoch: u32, rank: usize, round: u32) -> u64 {
    let mut x = splitmix64(strategy_seed ^ u64::from(epoch));
    x = splitmix64(x ^ (rank as u64) << 32);
    splitmix64(x ^ u64::from(round))
}

/// The master protocol shared by both non-default strategies.
///
/// Every rank holds the full example set and an identical live set, so the
/// counts inside each [`Msg::RulesFound`] are already *global*: the master
/// pools the per-rank rules, accepts the single best acceptable one per
/// epoch (ties broken by pool order, which is rank-then-rule order), and
/// broadcasts [`Msg::MarkCovered`] — no evaluation round, no pipeline. An
/// epoch with no acceptable rule retires the shared seed example
/// ([`Msg::RetireSeed`]; rank 1 answers for the mesh, since every rank
/// retires the same example).
pub fn run_strategy_master<T: Transport>(
    ep: &mut Endpoint<T>,
    settings: &Settings,
    total_pos: usize,
) -> MasterOutcome {
    let p = ep.workers();
    let mut out = MasterOutcome::default();
    let mut remaining = total_pos;

    ep.broadcast(&Msg::LoadExamples);

    while remaining > 0 {
        out.epochs += 1;
        let epoch = out.epochs;
        let mut epoch_span = Some(span!(ep.tracer(), "epoch", ep.now(), epoch = epoch));
        let mut trace = EpochTrace {
            epoch,
            pipelines: vec![Vec::new(); p],
            bag_size: 0,
            accepted: 0,
        };

        for k in 1..=p {
            ep.send(k, &Msg::StartPipeline { epoch });
        }
        // Pool the per-rank harvests, deduplicating by clause: with
        // replicated examples a rule's counts are identical wherever it was
        // found, so the first copy (lowest rank, best local order) wins.
        let mut pool: Vec<(Clause, u32, u32, u8)> = Vec::new();
        let mut any_seed = false;
        for k in 1..=p {
            let msg = Msg::recv(ep, k, "RulesFound");
            let Msg::RulesFound {
                origin,
                rules,
                had_seed,
                trace: ptrace,
            } = msg
            else {
                panic!("strategy master: expected RulesFound from rank {k}, got {msg:?}");
            };
            any_seed |= had_seed;
            for (clause, pos, neg) in rules {
                if !pool.iter().any(|(c, ..)| *c == clause) {
                    pool.push((clause, pos, neg, origin));
                }
            }
            trace.pipelines[origin as usize - 1] = ptrace;
        }
        trace.bag_size = pool.len() as u32;

        if !any_seed {
            out.stalled = true;
            out.traces.push(trace);
            if let Some(s) = epoch_span.take() {
                s.end(ep.now());
            }
            break;
        }

        // Master-side pool scan is compute: one step per pooled rule.
        ep.advance_steps(pool.len() as u64);
        let mut best: Option<(Clause, u32, u32, u8, i64)> = None;
        for (clause, pos, neg, origin) in pool {
            if !settings.is_good(pos, neg) {
                continue;
            }
            let score = settings.score.score(pos, neg, clause.body.len());
            // Strictly greater: ties keep the earliest pool entry.
            if best.as_ref().is_none_or(|b| score > b.4) {
                best = Some((clause, pos, neg, origin, score));
            }
        }

        match best {
            Some((clause, pos, neg, origin, _)) => {
                ep.broadcast(&Msg::MarkCovered {
                    rule: clause.clone(),
                });
                remaining = remaining.saturating_sub(pos as usize);
                out.theory.push(AcceptedRule {
                    clause,
                    pos,
                    neg,
                    epoch,
                    origin,
                });
                trace.accepted = 1;
            }
            None => {
                // No acceptable rule for the shared seed: retire it. Every
                // rank clears the same example; rank 1 reports the count.
                ep.broadcast(&Msg::RetireSeed);
                let msg = Msg::recv(ep, 1, "SeedRetired");
                let Msg::SeedRetired { removed } = msg else {
                    panic!("strategy master: expected SeedRetired from rank 1, got {msg:?}");
                };
                if removed == 0 {
                    out.stalled = true;
                    out.traces.push(trace);
                    if let Some(s) = epoch_span.take() {
                        s.end(ep.now());
                    }
                    break;
                }
                remaining = remaining.saturating_sub(removed as usize);
                out.set_aside += removed;
            }
        }
        let accepted = trace.accepted;
        out.traces.push(trace);
        if let Some(s) = epoch_span.take() {
            s.end_with(
                ep.now(),
                &[
                    ("accepted", accepted.into()),
                    ("remaining", (remaining as u64).into()),
                ],
            );
        }
    }

    ep.broadcast(&Msg::Stop);
    out
}

/// The worker protocol shared by both non-default strategies. Must be
/// called on ranks `1..=p` with the **full** example set in `ctx.local`.
///
/// The shared-seed invariant: every rank holds identical examples, applies
/// every `MarkCovered`/`RetireSeed` identically, and picks its epoch seed
/// as the *first* live positive — so all ranks saturate the same example
/// into the same bottom clause, which is what makes lattice slices and
/// exchanged constraints commensurable across ranks.
pub fn run_strategy_worker<T: Transport>(ep: &mut Endpoint<T>, mut ctx: StrategyWorkerContext) {
    let me = ep.rank();
    assert!(
        me >= 1,
        "run_strategy_worker must not run on the master rank"
    );
    assert!(
        ctx.strategy != Strategy::DataPipeline,
        "the data-pipeline strategy runs the legacy run_worker loop"
    );

    let mut live = ctx.local.full_pos_live();
    let mut current_seed: Option<usize> = None;
    // Constraint state (ConstraintDriven only): the store is bottom-clause
    // relative, so it is keyed to the seed index that produced it and
    // cleared whenever the seed moves.
    let mut store = ConstraintStore::new();
    let mut store_key: Option<usize> = None;

    loop {
        let msg = Msg::recv(ep, 0, "a master command");
        match msg {
            Msg::KbSnapshot(snap) => adopt_kb_snapshot(&mut ctx.engine, *snap, me),
            Msg::LoadExamples => {
                ep.advance_steps(ctx.local.len() as u64);
            }
            Msg::StartPipeline { epoch } => {
                current_seed = live.first();
                if ctx.strategy == Strategy::ConstraintDriven && store_key != current_seed {
                    store.clear();
                    store_key = current_seed;
                }
                let (rules, trace, had_seed) =
                    run_strategy_epoch(ep, &mut ctx, &live, current_seed, epoch, &mut store);
                ep.send(
                    0,
                    &Msg::RulesFound {
                        origin: me as u8,
                        rules,
                        had_seed,
                        trace,
                    },
                );
            }
            Msg::MarkCovered { rule } => {
                let cov = ctx.engine.evaluate(&rule, &ctx.local, Some(&live), None);
                ep.advance_steps(cov.steps);
                live.difference_with(&cov.pos);
                ctx.engine.assert_rule(rule);
            }
            Msg::RetireSeed => {
                let mut removed = 0u32;
                if let Some(idx) = current_seed {
                    if live.get(idx) {
                        live.clear(idx);
                        removed = 1;
                    }
                }
                // Every rank retired the same shared seed; rank 1 speaks
                // for the mesh.
                if me == 1 {
                    ep.send(0, &Msg::SeedRetired { removed });
                }
            }
            Msg::Stop => return,
            other => panic!("strategy worker {me}: unexpected master message {other:?}"),
        }
    }
}

/// One strategy epoch on one rank: saturate the shared seed, search under
/// the strategy's guide, return the width-capped harvest as materialized
/// clauses plus a stage trace per search round.
fn run_strategy_epoch<T: Transport>(
    ep: &mut Endpoint<T>,
    ctx: &mut StrategyWorkerContext,
    live: &Bitset,
    seed_idx: Option<usize>,
    epoch: u32,
    store: &mut ConstraintStore,
) -> (Vec<(Clause, u32, u32)>, Vec<StageTrace>, bool) {
    let me = ep.rank();
    // The seed (and whether its saturation succeeds) is identical on every
    // rank, so the skip below is rank-uniform and nobody blocks waiting for
    // a peer that bailed out.
    let Some(idx) = seed_idx else {
        return (Vec::new(), Vec::new(), false);
    };
    let seed_example = ctx.local.pos[idx].clone();
    let Some(bottom) = ctx.engine.saturate(&seed_example) else {
        return (Vec::new(), Vec::new(), true);
    };
    ep.advance_steps(bottom.steps);

    let mut traces = Vec::new();
    let mut round = |ep: &mut Endpoint<T>,
                     ctx: &StrategyWorkerContext,
                     guide: &SearchGuide,
                     constraints: Option<&ConstraintStore>,
                     step: u8,
                     rules_in: u32|
     -> (Vec<ScoredRule>, Vec<p2mdie_ilp::RuleShape>) {
        let start = ep.now();
        let stage_span = span!(ep.tracer(), "stage", start, origin = me as u8, step = step);
        let out =
            ctx.engine
                .search_guided(&bottom, &ctx.local, Some(live), &[], guide, constraints);
        ep.advance_steps(out.steps);
        stage_span.end_with(
            ep.now(),
            &[
                ("rules_out", (out.good.len() as u64).into()),
                ("cut", (out.cut as u64).into()),
            ],
        );
        traces.push(StageTrace {
            worker: me as u8,
            step,
            start,
            end: ep.now(),
            rules_in,
            rules_out: out.good.len() as u32,
        });
        (out.good, out.dead)
    };

    let good = match ctx.strategy {
        Strategy::SearchPartition => {
            let guide = SearchGuide {
                slice: Some(LatticeSlice {
                    rank: (me - 1) as u64,
                    of: ep.workers() as u64,
                    salt: ctx.strategy_seed,
                }),
                ..SearchGuide::default()
            };
            round(ep, ctx, &guide, None, 1, 0).0
        }
        Strategy::ConstraintDriven => {
            let p = ep.workers();
            let guide1 = SearchGuide {
                explore_seed: Some(explore_seed(ctx.strategy_seed, epoch, me, 1)),
                collect_dead: true,
                dead_cap: DEAD_SHAPE_CAP,
                ..SearchGuide::default()
            };
            let (good1, dead1) = round(ep, ctx, &guide1, Some(store), 1, 0);

            // Exchange: broadcast my dead shapes, then gather each peer's
            // in rank order. Sends are buffered, so every rank sending
            // before receiving cannot deadlock; the traffic lands in the
            // dedicated constraint row of the stats.
            if p > 1 {
                ep.set_constraint_phase(true);
                for k in (1..=p).filter(|&k| k != me) {
                    ep.send(
                        k,
                        &Msg::Constraint {
                            origin: me as u8,
                            epoch,
                            shapes: dead1.clone(),
                        },
                    );
                }
                ep.set_constraint_phase(false);
                for k in (1..=p).filter(|&k| k != me) {
                    let msg = Msg::recv(ep, k, "a Constraint broadcast");
                    let Msg::Constraint { shapes, .. } = msg else {
                        panic!(
                            "strategy worker {me}: expected a Constraint from rank {k}, \
                             got {msg:?}"
                        );
                    };
                    store.merge(&shapes);
                }
            }
            store.merge(&dead1);

            let guide2 = SearchGuide {
                explore_seed: Some(explore_seed(ctx.strategy_seed, epoch, me, 2)),
                collect_dead: true,
                dead_cap: DEAD_SHAPE_CAP,
                ..SearchGuide::default()
            };
            let (good2, dead2) = round(ep, ctx, &guide2, Some(store), 2, store.len() as u32);
            store.merge(&dead2);

            let mut good = good1;
            good.extend(good2);
            good
        }
        Strategy::DataPipeline => unreachable!("guarded at the loop entry"),
    };

    // Deterministic harvest: best-first by rank key, duplicates (a shape
    // found in both rounds) collapsed, width cap applied.
    let mut good = take_top(good, usize::MAX);
    good.dedup_by(|a, b| a.shape == b.shape);
    good.truncate(ctx.width.cap());
    let rules = good
        .iter()
        .map(|r| (r.shape.to_clause(&bottom), r.pos, r.neg))
        .collect();
    (rules, traces, true)
}

/// [`crate::driver::run_parallel`]'s engine room for the non-default
/// strategies: a fresh in-process mesh, full example replication, the
/// shared strategy master. The lifecycle walk mirrors
/// [`crate::scheduler::one_shot_parallel`].
pub(crate) fn one_shot_strategy(
    engine: &IlpEngine,
    examples: &Examples,
    cfg: &ParallelConfig,
) -> Result<ParallelReport, ClusterError> {
    assert!(
        cfg.strategy != Strategy::DataPipeline,
        "the data-pipeline strategy dispatches through one_shot_parallel"
    );
    assert!(
        !cfg.repartition,
        "repartitioning only applies to the data-pipeline strategy \
         (the others replicate examples on every rank)"
    );
    assert!(
        matches!(cfg.recovery, RecoveryPolicy::Abort),
        "worker-death recovery only covers the data-pipeline strategy"
    );
    let started = Instant::now();
    let mut job = Lifecycle::new(EPHEMERAL_JOB);
    job.advance(JobState::Dispatching);

    let threads_per_rank = threads_per_worker(engine.settings.eval_threads, cfg.workers);
    let contexts: Vec<Mutex<Option<StrategyWorkerContext>>> = (0..cfg.workers)
        .map(|_| {
            let mut worker_engine = if cfg.ship_kb {
                engine.with_empty_kb()
            } else {
                engine.clone()
            };
            worker_engine.settings.eval_threads = threads_per_rank;
            Mutex::new(Some(StrategyWorkerContext::new(
                worker_engine,
                examples.clone(),
                cfg.width,
                cfg.strategy,
                cfg.seed,
            )))
        })
        .collect();
    let settings = engine.settings.clone();
    let total_pos = examples.num_pos();

    job.advance(JobState::Running);
    let run = run_cluster(
        cfg.workers,
        cfg.model,
        |ep| {
            if cfg.ship_kb {
                ship_kb(ep, &engine.kb);
            }
            run_strategy_master(ep, &settings, total_pos)
        },
        |ep| {
            let ctx = contexts[ep.rank() - 1]
                .lock()
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {}: worker-context lock poisoned by an earlier panic",
                        ep.rank()
                    )
                })
                .take()
                .expect("each worker context is taken exactly once");
            run_strategy_worker(ep, ctx);
        },
    );
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            job.advance(JobState::Failed);
            return Err(e);
        }
    };

    job.advance(JobState::Draining);
    let master = outcome.result;
    let report = ParallelReport {
        workers: cfg.workers,
        theory: master.theory,
        epochs: master.epochs,
        set_aside: master.set_aside,
        vtime: outcome.master_vtime,
        worker_vtimes: outcome.worker_vtimes,
        total_bytes: outcome.stats.total_bytes(),
        total_messages: outcome.stats.total_messages(),
        worker_steps: outcome.worker_steps,
        dropped_sends: outcome.dropped_sends,
        wall: started.elapsed(),
        traces: master.traces,
        stalled: master.stalled,
        rank_losses: master.rank_losses,
        recovery_bytes: outcome.stats.recovery_bytes(),
        recovery_messages: outcome.stats.recovery_messages(),
        constraint_bytes: outcome.stats.constraint_bytes(),
        constraint_messages: outcome.stats.constraint_messages(),
    };
    job.advance(JobState::Done);
    Ok(report)
}

/// [`one_shot_strategy`] with every worker a real OS process over localhost
/// TCP: the full example set ships to every rank (replication is the
/// strategy's data model, and the bytes are accounted like any other
/// transfer), and the workers' constraint counters come back in their
/// shutdown reports.
pub(crate) fn one_shot_strategy_tcp(
    engine: &IlpEngine,
    examples: &Examples,
    cfg: &ParallelConfig,
    tcp: &crate::remote::TcpConfig,
) -> Result<ParallelReport, ClusterError> {
    assert!(
        cfg.strategy != Strategy::DataPipeline,
        "the data-pipeline strategy dispatches through one_shot_parallel_tcp"
    );
    assert!(!cfg.repartition && matches!(cfg.recovery, RecoveryPolicy::Abort));
    let started = Instant::now();
    let mut job = Lifecycle::new(EPHEMERAL_JOB);
    job.advance(JobState::Dispatching);
    let bin = tcp.resolve_worker_bin()?;
    let subsets = vec![examples.clone(); cfg.workers];
    let mut worker_settings = engine.settings.clone();
    worker_settings.eval_threads = threads_per_worker(engine.settings.eval_threads, cfg.workers);
    let config = WorkerConfig {
        role: WorkerRole::Pipeline {
            width: cfg.width,
            repartition: false,
        },
        modes: engine.modes.clone(),
        settings: worker_settings,
        strategy: cfg.strategy,
        strategy_seed: cfg.seed,
    };
    let settings = engine.settings.clone();
    let total_pos = examples.num_pos();

    job.advance(JobState::Running);
    let run = run_cluster_tcp(
        cfg.workers,
        cfg.model,
        tcp.timeout,
        |rank, addr| crate::remote::spawn_worker(&bin, rank, addr, tcp),
        |ep| {
            crate::remote::bootstrap_workers(ep, engine, &config, &subsets);
            run_strategy_master(ep, &settings, total_pos)
        },
    );
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            job.advance(JobState::Failed);
            return Err(e);
        }
    };

    job.advance(JobState::Draining);
    let master = outcome.result;
    let report = ParallelReport {
        workers: cfg.workers,
        theory: master.theory,
        epochs: master.epochs,
        set_aside: master.set_aside,
        vtime: outcome.master_vtime,
        worker_vtimes: outcome.worker_vtimes,
        total_bytes: outcome.stats.total_bytes(),
        total_messages: outcome.stats.total_messages(),
        worker_steps: outcome.worker_steps,
        dropped_sends: outcome.dropped_sends,
        wall: started.elapsed(),
        traces: master.traces,
        stalled: master.stalled,
        rank_losses: master.rank_losses,
        recovery_bytes: outcome.stats.recovery_bytes(),
        recovery_messages: outcome.stats.recovery_messages(),
        constraint_bytes: outcome.stats.constraint_bytes(),
        constraint_messages: outcome.stats.constraint_messages(),
    };
    job.advance(JobState::Done);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_parallel;
    use p2mdie_cluster::CostModel;
    use p2mdie_ilp::modes::ModeSet;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// Multiples of 6 or 10 in 1..=n — needs a two-rule theory.
    fn problem(n: i64) -> (IlpEngine, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=n {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(t.intern("div3"), vec![Term::Int(i)]));
            }
            if i % 5 == 0 {
                kb.assert_fact(Literal::new(t.intern("div5"), vec![Term::Int(i)]));
            }
        }
        let modes = ModeSet::parse(
            &t,
            "special(+num)",
            &[(1, "even(+num)"), (1, "div3(+num)"), (1, "div5(+num)")],
        )
        .unwrap();
        let tgt = t.intern("special");
        let ex = Examples::new(
            (1..=n)
                .filter(|i| i % 6 == 0 || i % 10 == 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            (1..=n)
                .filter(|i| i % 6 != 0 && i % 10 != 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        let engine = IlpEngine::new(
            kb,
            modes,
            Settings {
                min_pos: 2,
                noise: 0,
                max_body: 3,
                ..Settings::default()
            },
        );
        (engine, ex)
    }

    fn cfg(workers: usize, strategy: Strategy) -> ParallelConfig {
        let mut cfg = ParallelConfig::new(workers, Width::Unlimited, 42).with_strategy(strategy);
        cfg.model = CostModel::free();
        cfg
    }

    fn check_complete_and_consistent(engine: &IlpEngine, ex: &Examples, clauses: &[Clause]) {
        let mut covered = Bitset::new(ex.num_pos());
        for c in clauses {
            let cov = engine.evaluate(c, ex, None, None);
            covered.union_with(&cov.pos);
            assert_eq!(cov.neg_count(), 0, "inconsistent clause in theory");
        }
        assert_eq!(
            covered.count(),
            ex.num_pos(),
            "theory must cover all positives"
        );
    }

    #[test]
    fn strategy_tags_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_tag(s.tag()), Some(s));
        }
        assert_eq!(Strategy::from_tag(200), None);
        assert_eq!(Strategy::default(), Strategy::DataPipeline);
    }

    /// Both non-default strategies learn a complete, consistent theory on
    /// the two-rule problem, at several mesh widths.
    #[test]
    fn nondefault_strategies_learn_correct_theories() {
        let (engine, ex) = problem(120);
        for strategy in [Strategy::SearchPartition, Strategy::ConstraintDriven] {
            for workers in [1, 2, 3] {
                let rep = run_parallel(&engine, &ex, &cfg(workers, strategy)).unwrap();
                assert!(!rep.stalled, "{strategy} with {workers} workers stalled");
                check_complete_and_consistent(&engine, &ex, &rep.clauses());
            }
        }
    }

    /// The same (strategy, workers, seed) triple is deterministic:
    /// identical theory, epochs, traffic, and steps across runs.
    #[test]
    fn strategy_runs_are_deterministic() {
        let (engine, ex) = problem(120);
        for strategy in [Strategy::SearchPartition, Strategy::ConstraintDriven] {
            let a = run_parallel(&engine, &ex, &cfg(3, strategy)).unwrap();
            let b = run_parallel(&engine, &ex, &cfg(3, strategy)).unwrap();
            assert_eq!(a.theory, b.theory, "{strategy}");
            assert_eq!(a.epochs, b.epochs, "{strategy}");
            assert_eq!(a.total_bytes, b.total_bytes, "{strategy}");
            assert_eq!(a.worker_steps, b.worker_steps, "{strategy}");
        }
    }

    /// Constraint gossip is metered in its dedicated row: present under
    /// `ConstraintDriven` with p ≥ 2, absent everywhere else, and always a
    /// subset of the total.
    #[test]
    fn constraint_traffic_is_metered_separately() {
        let (engine, ex) = problem(120);
        let driven = run_parallel(&engine, &ex, &cfg(3, Strategy::ConstraintDriven)).unwrap();
        assert!(
            driven.constraint_messages > 0,
            "a 3-rank constraint-driven run must gossip"
        );
        assert!(driven.constraint_bytes > 0);
        assert!(driven.constraint_bytes <= driven.total_bytes);
        assert!(driven.constraint_messages <= driven.total_messages);

        let sliced = run_parallel(&engine, &ex, &cfg(3, Strategy::SearchPartition)).unwrap();
        assert_eq!(sliced.constraint_bytes, 0);
        assert_eq!(sliced.constraint_messages, 0);

        let solo = run_parallel(&engine, &ex, &cfg(1, Strategy::ConstraintDriven)).unwrap();
        assert_eq!(
            solo.constraint_messages, 0,
            "a single rank has nobody to gossip with"
        );
    }

    /// The default strategy still routes through the legacy path: its
    /// report never shows constraint traffic.
    #[test]
    fn data_pipeline_reports_no_constraint_traffic() {
        let (engine, ex) = problem(120);
        let rep = run_parallel(&engine, &ex, &cfg(2, Strategy::DataPipeline)).unwrap();
        assert!(!rep.theory.is_empty());
        assert_eq!(rep.constraint_bytes, 0);
        assert_eq!(rep.constraint_messages, 0);
    }
}
