//! Random, even example partitioning (paper Fig. 5, step 2).
//!
//! "At step 1, the master randomly and evenly partitions the examples into
//! `p` subsets." Positives and negatives are partitioned independently so
//! every worker sees a representative class mix; the shuffle is seeded, so
//! a run is reproducible end to end.

use p2mdie_ilp::examples::Examples;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The index assignment produced by [`partition_examples`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// For each worker, the indices of its positive examples in the
    /// original set.
    pub pos: Vec<Vec<usize>>,
    /// For each worker, the indices of its negative examples.
    pub neg: Vec<Vec<usize>>,
}

impl Partition {
    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.pos.len()
    }
}

fn deal(n: usize, p: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut out = vec![Vec::with_capacity(n / p + 1); p];
    for (i, e) in idx.into_iter().enumerate() {
        out[i % p].push(e);
    }
    out
}

/// Splits `examples` into `p` random, even subsets.
///
/// Returns the per-worker example sets plus the index assignment (useful
/// for tests and for mapping local coverage back to global indices).
pub fn partition_examples(examples: &Examples, p: usize, seed: u64) -> (Vec<Examples>, Partition) {
    assert!(p >= 1, "need at least one subset");
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = deal(examples.num_pos(), p, &mut rng);
    let neg = deal(examples.num_neg(), p, &mut rng);
    let subsets = (0..p).map(|k| examples.subset(&pos[k], &neg[k])).collect();
    (subsets, Partition { pos, neg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    fn ex(n_pos: usize, n_neg: usize) -> Examples {
        let t = SymbolTable::new();
        let p = t.intern("p");
        Examples::new(
            (0..n_pos)
                .map(|i| Literal::new(p, vec![Term::Int(i as i64)]))
                .collect(),
            (0..n_neg)
                .map(|i| Literal::new(p, vec![Term::Int(1000 + i as i64)]))
                .collect(),
        )
    }

    #[test]
    fn partition_is_a_permutation() {
        let e = ex(23, 17);
        let (_, part) = partition_examples(&e, 4, 42);
        let mut all_pos: Vec<usize> = part.pos.iter().flatten().copied().collect();
        all_pos.sort_unstable();
        assert_eq!(all_pos, (0..23).collect::<Vec<_>>());
        let mut all_neg: Vec<usize> = part.neg.iter().flatten().copied().collect();
        all_neg.sort_unstable();
        assert_eq!(all_neg, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn subsets_are_even() {
        let e = ex(23, 17);
        let (subs, _) = partition_examples(&e, 4, 7);
        let pos_sizes: Vec<usize> = subs.iter().map(|s| s.num_pos()).collect();
        let neg_sizes: Vec<usize> = subs.iter().map(|s| s.num_neg()).collect();
        assert_eq!(pos_sizes.iter().sum::<usize>(), 23);
        assert_eq!(neg_sizes.iter().sum::<usize>(), 17);
        assert!(pos_sizes.iter().max().unwrap() - pos_sizes.iter().min().unwrap() <= 1);
        assert!(neg_sizes.iter().max().unwrap() - neg_sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn seeded_and_deterministic() {
        let e = ex(50, 50);
        let a = partition_examples(&e, 8, 1).1;
        let b = partition_examples(&e, 8, 1).1;
        let c = partition_examples(&e, 8, 2).1;
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn single_worker_gets_everything_shuffled() {
        let e = ex(10, 5);
        let (subs, _) = partition_examples(&e, 1, 3);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].num_pos(), 10);
        assert_eq!(subs[0].num_neg(), 5);
    }

    #[test]
    fn more_workers_than_examples_leaves_some_empty() {
        let e = ex(2, 1);
        let (subs, _) = partition_examples(&e, 4, 0);
        assert_eq!(subs.iter().map(|s| s.num_pos()).sum::<usize>(), 2);
        assert!(subs.iter().filter(|s| s.num_pos() == 0).count() >= 2);
    }
}
