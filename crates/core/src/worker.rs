//! The worker rank (paper Figure 6 plus the stage scheduling of Figure 7).
//!
//! A worker's epoch is a fixed, deterministic script — the message pattern
//! of p²-mdie is static, so every receive names its source rank (MPI-style
//! `recv_from`), which makes whole runs reproducible:
//!
//! 1. `StartPipeline` from the master → run stage 1 of *this* worker's
//!    pipeline and forward the token;
//! 2. exactly `p − 1` `PipelineStage` tokens from the predecessor → run
//!    their next stage, forward (to the successor, or to the master as
//!    `RulesFound` after stage `p`);
//! 3. then serve master commands — `Evaluate`, `MarkCovered`, `RetireSeed` —
//!    until the next `StartPipeline` or `Stop`.
//!
//! # Recovery mode
//!
//! When the master broadcasts [`Msg::EnableRecovery`] before `LoadExamples`,
//! the worker arms the rank-death protocol. The ring is then *membership
//! dependent*: each `StartPipeline` recomputes the successor/predecessor
//! from the local live-rank set, and every mid-epoch receive watches the
//! master channel too, so an [`Msg::AbortEpoch`] can interrupt a stage wait.
//! An abort quiesces the old ring deterministically — send an
//! [`Msg::EpochFlush`] marker to the old successor, drain the old
//! predecessor down to its marker, ack the master — after which the worker
//! can adopt a dead rank's examples ([`Msg::AdoptExamples`]) and answer a
//! theory replay ([`Msg::ReplayTheory`]) so the master's global live set
//! resynchronizes exactly. Without `EnableRecovery` none of this code runs
//! and the protocol is byte-for-byte the legacy one.

use crate::pipeline::run_stage_search;
use crate::protocol::{Msg, PipelineToken, StageTrace};
use p2mdie_cluster::codec::from_bytes;
use p2mdie_cluster::comm::{CommError, CommFailure, Endpoint};
use p2mdie_cluster::transport::Transport;
use p2mdie_ilp::bitset::Bitset;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::settings::Width;
use p2mdie_obs::span;

/// Everything a worker owns locally: its engine (background knowledge,
/// modes, settings), its example subset, and the pipeline width.
///
/// The engine's `settings.eval_threads` controls how many OS threads this
/// rank's coverage evaluations fan out over (the driver splits the physical
/// cores across ranks); results are bit-identical for any value, so the
/// simulated cluster stays deterministic while exploiting real cores.
pub struct WorkerContext {
    /// The local ILP engine (the KB grows as rules are accepted).
    pub engine: IlpEngine,
    /// The local example subset `(E+_k, E-_k)`.
    pub local: Examples,
    /// Pipeline width `W`.
    pub width: Width,
    /// Repartitioning mode (paper §4.1's rejected alternative): the master
    /// re-deals live examples every epoch via `NewPartition`, and each
    /// `MarkCovered` is answered with the covered local indices so the
    /// master can track the global live set.
    pub repartition: bool,
}

impl WorkerContext {
    /// A static-partition context (plain p²-mdie).
    pub fn new(engine: IlpEngine, local: Examples, width: Width) -> Self {
        WorkerContext {
            engine,
            local,
            width,
            repartition: false,
        }
    }
}

/// Installs a received compiled-KB snapshot into a worker's engine: no
/// fact-argument re-interning, no posting-list rebuild, no rule recompile —
/// the transfer time was already merged into the rank's clock by the
/// receive, and adoption is the near-instant structural validation inside
/// `from_snapshot`. Shared by the p²-mdie worker and the coverage-parallel
/// baseline worker.
pub fn adopt_kb_snapshot(engine: &mut IlpEngine, snap: p2mdie_logic::KbSnapshot, rank: usize) {
    let syms = engine.kb.symbols().clone();
    engine.kb = p2mdie_logic::kb::KnowledgeBase::from_snapshot(snap, syms)
        .unwrap_or_else(|e| panic!("rank {rank}: rejected KB snapshot: {e}"));
}

/// How an epoch's pipelines ended.
enum EpochEnd {
    /// All `p` stages ran; the final token went to the master.
    Done,
    /// The master aborted the epoch because rank `dead` is gone.
    /// `prev_flushed` records whether the old predecessor's
    /// [`Msg::EpochFlush`] marker was already consumed by the stage loop.
    Aborted { dead: usize, prev_flushed: bool },
}

/// The ring neighbours of `me` within the live-rank set `alive` (which
/// must contain `me`). With a single live rank both neighbours are `me`.
fn ring_neighbors(me: usize, alive: &[usize]) -> (usize, usize) {
    let pos = alive
        .iter()
        .position(|&r| r == me)
        .expect("own rank must be in the live set");
    let len = alive.len();
    (alive[(pos + 1) % len], alive[(pos + len - 1) % len])
}

/// Quiesces the old ring after the master announced rank `dead` is gone:
/// shrink the live set, send the flush marker to the old successor, drain
/// the old predecessor down to *its* marker (unless the stage loop already
/// consumed it), ack the master, and forget everything buffered from the
/// dead rank.
fn handle_abort<T: Transport>(
    ep: &mut Endpoint<T>,
    alive: &mut Vec<usize>,
    me: usize,
    dead: usize,
    prev_flushed: bool,
) {
    let quiesce = span!(ep.tracer(), "quiesce", ep.now(), dead = dead);
    let (old_next, old_prev) = ring_neighbors(me, alive);
    alive.retain(|&r| r != dead);
    ep.set_recovery_phase(true);
    if old_next != dead && old_next != me {
        ep.send(old_next, &Msg::EpochFlush);
    }
    if !prev_flushed && old_prev != dead && old_prev != me {
        // Discard stale pipeline traffic up to the predecessor's marker; a
        // dead link counts as fully drained (nothing more can arrive).
        while let Ok(bytes) = ep.recv_from(old_prev) {
            if matches!(from_bytes::<Msg>(bytes), Ok(Msg::EpochFlush)) {
                break;
            }
        }
    }
    ep.send(0, &Msg::AbortAck);
    ep.set_recovery_phase(false);
    ep.clear_pending(dead);
    ep.mark_down(dead);
    quiesce.end(ep.now());
}

/// Runs the worker protocol until `Stop`. Rank 0 is the master; this must
/// be called on ranks `1..=p`.
pub fn run_worker<T: Transport>(ep: &mut Endpoint<T>, mut ctx: WorkerContext) {
    let me = ep.rank();
    assert!(me >= 1, "run_worker must not run on the master rank");
    let p = ep.workers();
    let next = me % p + 1;
    let prev = if me == 1 { p } else { me - 1 };

    let mut live = ctx.local.full_pos_live();
    let mut current_seed: Option<usize> = None;
    let mut recovery = false;
    let mut alive: Vec<usize> = (1..=p).collect();

    loop {
        let msg = Msg::recv(ep, 0, "a master command");
        match msg {
            Msg::KbSnapshot(snap) => adopt_kb_snapshot(&mut ctx.engine, *snap, me),
            Msg::EnableRecovery => recovery = true,
            Msg::LoadExamples => {
                // Data is shared (distributed-FS assumption); loading costs
                // compute proportional to the local subset.
                ep.advance_steps(ctx.local.len() as u64);
            }
            Msg::StartPipeline { epoch: _ } => {
                let (p_now, next_now, prev_now) = if recovery {
                    let (n, pv) = ring_neighbors(me, &alive);
                    (alive.len(), n, pv)
                } else {
                    (p, next, prev)
                };
                let end = run_epoch_pipelines(
                    ep,
                    &mut ctx,
                    &live,
                    &mut current_seed,
                    me as u8,
                    p_now,
                    next_now,
                    prev_now,
                    recovery,
                );
                if let EpochEnd::Aborted { dead, prev_flushed } = end {
                    handle_abort(ep, &mut alive, me, dead, prev_flushed);
                }
            }
            Msg::AbortEpoch { dead } => {
                // A rank died while this worker was between epochs; the
                // quiesce still runs so ring markers pair up everywhere.
                assert!(recovery, "AbortEpoch outside recovery mode");
                handle_abort(ep, &mut alive, me, dead as usize, false);
            }
            Msg::AdoptExamples { pos, neg } => {
                // Inherit a dead rank's (still-live) examples on top of the
                // current subset; adopted positives start live.
                assert!(recovery, "AdoptExamples outside recovery mode");
                ep.advance_steps((pos.len() + neg.len()) as u64);
                let old_len = ctx.local.num_pos();
                ctx.local.pos.extend(pos);
                ctx.local.neg.extend(neg);
                let mut grown = Bitset::new(ctx.local.num_pos());
                for i in live.iter_ones() {
                    grown.set(i);
                }
                for i in old_len..ctx.local.num_pos() {
                    grown.set(i);
                }
                live = grown;
            }
            Msg::ReplayTheory { rules } => {
                // Re-score the accepted theory against the (possibly just
                // adopted) live set and report everything it covers, so the
                // master can rebuild its global live set exactly. The rules
                // are NOT re-asserted — the KB already holds them.
                assert!(recovery, "ReplayTheory outside recovery mode");
                let mut covered = Bitset::new(ctx.local.num_pos());
                for rule in &rules {
                    let cov = ctx.engine.evaluate(rule, &ctx.local, Some(&live), None);
                    ep.advance_steps(cov.steps);
                    covered.union_with(&cov.pos);
                }
                let idx: Vec<u32> = covered.iter_ones().map(|i| i as u32).collect();
                ep.set_recovery_phase(true);
                ep.send(0, &Msg::CoveredIdx { pos: idx });
                ep.set_recovery_phase(false);
                live.difference_with(&covered);
            }
            Msg::Evaluate { rules } => {
                let mut counts = Vec::with_capacity(rules.len());
                for rule in &rules {
                    let cov = ctx.engine.evaluate(rule, &ctx.local, Some(&live), None);
                    ep.advance_steps(cov.steps);
                    counts.push((cov.pos_count(), cov.neg_count()));
                }
                ep.send(0, &Msg::EvalResult { counts });
            }
            Msg::MarkCovered { rule } => {
                let cov = ctx.engine.evaluate(&rule, &ctx.local, Some(&live), None);
                ep.advance_steps(cov.steps);
                if ctx.repartition || recovery {
                    let idx: Vec<u32> = cov.pos.iter_ones().map(|i| i as u32).collect();
                    ep.send(0, &Msg::CoveredIdx { pos: idx });
                }
                live.difference_with(&cov.pos);
                // Fig. 6: B := B ∪ {R}.
                ctx.engine.assert_rule(rule);
            }
            Msg::NewPartition { pos, neg } => {
                // §4.1 repartitioning: adopt the freshly-dealt subset.
                assert!(ctx.repartition, "NewPartition outside repartition mode");
                ep.advance_steps((pos.len() + neg.len()) as u64);
                ctx.local = Examples::new(pos, neg);
                live = ctx.local.full_pos_live();
                current_seed = None;
            }
            Msg::RetireSeed => {
                if recovery {
                    // The recovering master tracks coverage by global index,
                    // so the reply names the retired index instead of a count.
                    let mut idx = Vec::new();
                    if let Some(i) = current_seed {
                        if live.get(i) {
                            live.clear(i);
                            idx.push(i as u32);
                        }
                    }
                    ep.send(0, &Msg::CoveredIdx { pos: idx });
                } else {
                    let mut removed = 0u32;
                    if let Some(idx) = current_seed {
                        if live.get(idx) {
                            live.clear(idx);
                            removed = 1;
                        }
                    }
                    ep.send(0, &Msg::SeedRetired { removed });
                }
            }
            Msg::Stop => return,
            other => panic!("worker {me}: unexpected master message {other:?}"),
        }
    }
}

/// Stage 1 of the own pipeline plus the `p − 1` incoming stages.
///
/// In recovery mode every stage wait watches the master channel too: an
/// [`Msg::AbortEpoch`] (or the death of the ring predecessor itself)
/// interrupts the epoch and returns [`EpochEnd::Aborted`] so the caller can
/// quiesce the ring.
#[allow(clippy::too_many_arguments)]
fn run_epoch_pipelines<T: Transport>(
    ep: &mut Endpoint<T>,
    ctx: &mut WorkerContext,
    live: &Bitset,
    current_seed: &mut Option<usize>,
    me: u8,
    p: usize,
    next: usize,
    prev: usize,
    recovery: bool,
) -> EpochEnd {
    // --- Stage 1: seed, saturate, search. -----------------------------
    // Seeds advance round-robin through the live set (April's "select an
    // example"): picking the next live example after the previous seed
    // keeps one uncoverable example from monopolizing this pipeline.
    let start = ep.now();
    let stage_span = span!(ep.tracer(), "stage", start, origin = me, step = 1u32);
    *current_seed = next_live_seed(live, *current_seed);
    let (bottom, rules) = match *current_seed {
        None => (None, Vec::new()),
        Some(idx) => {
            let seed_example = ctx.local.pos[idx].clone();
            match ctx.engine.saturate(&seed_example) {
                None => (None, Vec::new()),
                Some(bottom) => {
                    ep.advance_steps(bottom.steps);
                    let stage =
                        run_stage_search(&ctx.engine, &ctx.local, live, &bottom, &[], ctx.width);
                    ep.advance_steps(stage.steps);
                    (Some(bottom), stage.rules)
                }
            }
        }
    };
    stage_span.end_with(ep.now(), &[("rules_out", (rules.len() as u64).into())]);
    let trace = StageTrace {
        worker: me,
        step: 1,
        start,
        end: ep.now(),
        rules_in: 0,
        rules_out: rules.len() as u32,
    };
    dispatch(
        ep,
        p,
        next,
        PipelineToken {
            origin: me,
            step: 2,
            bottom,
            rules,
            trace: vec![trace],
        },
    );

    // --- Stages 2..=p of the pipelines passing through this worker. ----
    for _ in 0..p.saturating_sub(1) {
        let token = if recovery {
            match recv_token_watching(ep, me, prev) {
                Ok(token) => token,
                Err(end) => return end,
            }
        } else {
            let msg = Msg::recv(ep, prev, "a PipelineStage token");
            let Msg::PipelineStage(token) = msg else {
                panic!("worker {me}: expected a pipeline token from rank {prev}, got {msg:?}");
            };
            token
        };
        let start = ep.now();
        let step = token.step;
        let stage_span = span!(
            ep.tracer(),
            "stage",
            start,
            origin = token.origin,
            step = step,
        );
        let rules_in = token.rules.len() as u32;
        let (bottom, rules) = match token.bottom {
            None => (None, Vec::new()),
            Some(bottom) => {
                let stage = run_stage_search(
                    &ctx.engine,
                    &ctx.local,
                    live,
                    &bottom,
                    &token.rules,
                    ctx.width,
                );
                ep.advance_steps(stage.steps);
                (Some(bottom), stage.rules)
            }
        };
        stage_span.end_with(ep.now(), &[("rules_out", (rules.len() as u64).into())]);
        let trace = StageTrace {
            worker: me,
            step,
            start,
            end: ep.now(),
            rules_in,
            rules_out: rules.len() as u32,
        };
        let mut full_trace = token.trace;
        full_trace.push(trace);
        dispatch(
            ep,
            p,
            next,
            PipelineToken {
                origin: token.origin,
                step: step + 1,
                bottom,
                rules,
                trace: full_trace,
            },
        );
    }
    EpochEnd::Done
}

/// One mid-epoch receive in recovery mode: a pipeline token from `prev`
/// wins, a master `AbortEpoch` (or an `EpochFlush` from a predecessor
/// already aborting, followed by the master's `AbortEpoch`) ends the epoch,
/// and a dead predecessor link blocks on the master's announcement.
fn recv_token_watching<T: Transport>(
    ep: &mut Endpoint<T>,
    me: u8,
    prev: usize,
) -> Result<PipelineToken, EpochEnd> {
    match ep.recv_from_either(prev, 0) {
        Ok((src, bytes)) => {
            let msg: Msg = match from_bytes(bytes) {
                Ok(msg) => msg,
                Err(error) => std::panic::panic_any(CommFailure {
                    rank: ep.rank(),
                    from: src,
                    expected: "a pipeline token or an epoch abort".to_owned(),
                    error: CommError::Decode(error),
                }),
            };
            match (src, msg) {
                (s, Msg::PipelineStage(token)) if s == prev => Ok(token),
                (s, Msg::EpochFlush) if s == prev => {
                    // The predecessor is already quiescing; the master's
                    // abort for us is on its way.
                    let msg = Msg::recv(ep, 0, "an AbortEpoch after a ring flush");
                    let Msg::AbortEpoch { dead } = msg else {
                        panic!("worker {me}: expected AbortEpoch after a flush, got {msg:?}");
                    };
                    Err(EpochEnd::Aborted {
                        dead: dead as usize,
                        prev_flushed: true,
                    })
                }
                (0, Msg::AbortEpoch { dead }) => Err(EpochEnd::Aborted {
                    dead: dead as usize,
                    prev_flushed: false,
                }),
                (s, other) => {
                    panic!("worker {me}: unexpected mid-epoch message from rank {s}: {other:?}")
                }
            }
        }
        Err(e) if e.from == prev => {
            // The predecessor's link itself died (socket transports); the
            // master will confirm which rank is gone.
            let msg = Msg::recv(ep, 0, "an AbortEpoch after a ring death");
            let Msg::AbortEpoch { dead } = msg else {
                panic!("worker {me}: expected AbortEpoch after a ring death, got {msg:?}");
            };
            Err(EpochEnd::Aborted {
                dead: dead as usize,
                prev_flushed: false,
            })
        }
        Err(e) => std::panic::panic_any(CommFailure {
            rank: ep.rank(),
            from: e.from,
            expected: "a pipeline token or an epoch abort".to_owned(),
            error: CommError::Closed(e),
        }),
    }
}

/// The next live example index strictly after `prev` (wrapping), or the
/// first live one when `prev` is `None` or nothing lies after it.
fn next_live_seed(live: &Bitset, prev: Option<usize>) -> Option<usize> {
    if let Some(p) = prev {
        if let Some(idx) = (p + 1..live.len()).find(|&i| live.get(i)) {
            return Some(idx);
        }
    }
    live.first()
}

/// Forwards a token whose `step` is the stage the *receiver* would run: to
/// the next worker while `step <= p`, to the master as `RulesFound` after
/// the final stage.
fn dispatch<T: Transport>(ep: &mut Endpoint<T>, p: usize, next: usize, token: PipelineToken) {
    if (token.step as usize) <= p {
        ep.send(next, &Msg::PipelineStage(token));
        return;
    }
    let had_seed = token.bottom.is_some();
    let rules = match &token.bottom {
        None => Vec::new(),
        Some(bottom) => token
            .rules
            .iter()
            .map(|r| (r.shape.to_clause(bottom), r.pos, r.neg))
            .collect(),
    };
    ep.send(
        0,
        &Msg::RulesFound {
            origin: token.origin,
            rules,
            had_seed,
            trace: token.trace,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_cluster::codec::to_bytes;
    use p2mdie_cluster::{run_cluster, CostModel};
    use p2mdie_ilp::modes::ModeSet;
    use p2mdie_ilp::settings::Settings;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    fn make_ctx(lo: i64, hi: i64) -> (SymbolTable, WorkerContext) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=60i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(t.intern("div3"), vec![Term::Int(i)]));
            }
        }
        let modes =
            ModeSet::parse(&t, "div6(+num)", &[(1, "even(+num)"), (1, "div3(+num)")]).unwrap();
        let tgt = t.intern("div6");
        let local = Examples::new(
            (lo..=hi)
                .filter(|i| i % 6 == 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            (lo..=hi)
                .filter(|i| i % 6 != 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        let engine = IlpEngine::new(
            kb,
            modes,
            Settings {
                min_pos: 1,
                noise: 0,
                ..Settings::default()
            },
        );
        (t, WorkerContext::new(engine, local, Width::Unlimited))
    }

    /// Drives a single worker through one epoch by hand from the master
    /// side and checks every protocol step.
    #[test]
    fn single_worker_epoch_protocol() {
        let (_t, ctx) = make_ctx(1, 30);
        let ctx = std::sync::Mutex::new(Some(ctx));
        let out = run_cluster(
            1,
            CostModel::free(),
            |ep| {
                ep.broadcast(&Msg::LoadExamples);
                ep.send(1, &Msg::StartPipeline { epoch: 1 });
                // p = 1: the worker's own stage is final; RulesFound comes
                // straight back.
                let Msg::RulesFound {
                    origin,
                    rules,
                    had_seed,
                    trace,
                } = ep.recv_msg(1).unwrap()
                else {
                    panic!("expected RulesFound")
                };
                assert_eq!(origin, 1);
                assert!(had_seed);
                assert!(!rules.is_empty());
                assert_eq!(trace.len(), 1);

                // Evaluate the first returned rule.
                let clause = rules[0].0.clone();
                ep.send(
                    1,
                    &Msg::Evaluate {
                        rules: vec![clause.clone()],
                    },
                );
                let Msg::EvalResult { counts } = ep.recv_msg(1).unwrap() else {
                    panic!("expected EvalResult")
                };
                assert_eq!(counts.len(), 1);
                assert!(counts[0].0 >= 1);

                // Mark covered, then re-evaluate: live cover must shrink to 0
                // for a rule that covered everything.
                ep.send(
                    1,
                    &Msg::MarkCovered {
                        rule: clause.clone(),
                    },
                );
                ep.send(
                    1,
                    &Msg::Evaluate {
                        rules: vec![clause],
                    },
                );
                let Msg::EvalResult { counts: after } = ep.recv_msg(1).unwrap() else {
                    panic!("expected EvalResult")
                };
                assert_eq!(after[0].0, 0, "covered examples must be retired");

                ep.send(1, &Msg::Stop);
            },
            |ep| {
                let c = ctx.lock().unwrap().take().expect("single worker");
                run_worker(ep, c);
            },
        )
        .unwrap();
        assert!(out.stats.total_bytes() > 0);
    }

    /// Two workers: tokens must travel 1 → 2 → master and 2 → 1 → master.
    #[test]
    fn two_worker_pipelines_route_tokens() {
        let (_t1, c1) = make_ctx(1, 30);
        let (_t2, c2) = make_ctx(31, 60);
        let ctxs = std::sync::Mutex::new(vec![Some(c1), Some(c2)]);
        run_cluster(
            2,
            CostModel::free(),
            |ep| {
                ep.broadcast(&Msg::LoadExamples);
                for k in 1..=2 {
                    ep.send(k, &Msg::StartPipeline { epoch: 1 });
                }
                // RulesFound for origin 1 arrives from worker 2 (its last
                // stage) and vice versa.
                let Msg::RulesFound {
                    origin: o2,
                    trace: t2,
                    ..
                } = ep.recv_msg(1).unwrap()
                else {
                    panic!()
                };
                let Msg::RulesFound {
                    origin: o1,
                    trace: t1,
                    ..
                } = ep.recv_msg(2).unwrap()
                else {
                    panic!()
                };
                assert_eq!(o1, 1);
                assert_eq!(o2, 2);
                // Each pipeline executed exactly two stages, in order.
                assert_eq!(t1.iter().map(|s| s.step).collect::<Vec<_>>(), vec![1, 2]);
                assert_eq!(t1.iter().map(|s| s.worker).collect::<Vec<_>>(), vec![1, 2]);
                assert_eq!(t2.iter().map(|s| s.worker).collect::<Vec<_>>(), vec![2, 1]);
                ep.broadcast(&Msg::Stop);
            },
            |ep| {
                let c = ctxs.lock().unwrap()[ep.rank() - 1].take().expect("ctx");
                run_worker(ep, c);
            },
        )
        .unwrap();
    }

    /// A worker with no live examples must still keep the schedule static
    /// (empty token, `had_seed = false`).
    #[test]
    fn empty_subset_sends_empty_pipeline() {
        let (_t1, c1) = make_ctx(1, 30);
        let (t2, mut c2) = make_ctx(31, 60);
        c2.local = Examples::new(
            vec![],
            vec![Literal::new(t2.intern("div6"), vec![Term::Int(1)])],
        );
        let ctxs = std::sync::Mutex::new(vec![Some(c1), Some(c2)]);
        run_cluster(
            2,
            CostModel::free(),
            |ep| {
                ep.broadcast(&Msg::LoadExamples);
                for k in 1..=2 {
                    ep.send(k, &Msg::StartPipeline { epoch: 1 });
                }
                let Msg::RulesFound {
                    origin: o2,
                    had_seed: h2,
                    rules: r2,
                    ..
                } = ep.recv_msg(1).unwrap()
                else {
                    panic!()
                };
                let Msg::RulesFound {
                    origin: o1,
                    had_seed: h1,
                    ..
                } = ep.recv_msg(2).unwrap()
                else {
                    panic!()
                };
                assert_eq!((o1, h1), (1, true));
                assert_eq!((o2, h2), (2, false));
                assert!(r2.is_empty());
                ep.broadcast(&Msg::Stop);
            },
            |ep| {
                let c = ctxs.lock().unwrap()[ep.rank() - 1].take().expect("ctx");
                run_worker(ep, c);
            },
        )
        .unwrap();
    }

    /// RetireSeed removes exactly the current seed.
    #[test]
    fn retire_seed_protocol() {
        let (_t, ctx) = make_ctx(1, 30);
        let n_pos = ctx.local.num_pos() as u32;
        let ctx = std::sync::Mutex::new(Some(ctx));
        run_cluster(
            1,
            CostModel::free(),
            |ep| {
                ep.broadcast(&Msg::LoadExamples);
                ep.send(1, &Msg::StartPipeline { epoch: 1 });
                let _ = ep.recv_from(1); // RulesFound
                ep.send(1, &Msg::RetireSeed);
                let Msg::SeedRetired { removed } = ep.recv_msg(1).unwrap() else {
                    panic!()
                };
                assert_eq!(removed, 1);
                // Retiring again in the same epoch is a no-op.
                ep.send(1, &Msg::RetireSeed);
                let Msg::SeedRetired { removed } = ep.recv_msg(1).unwrap() else {
                    panic!()
                };
                assert_eq!(removed, 0);
                // The retired seed is gone from the live set.
                ep.send(1, &Msg::Evaluate { rules: vec![] });
                let _ = ep.recv_from(1);
                assert!(n_pos >= 1);
                ep.send(1, &Msg::Stop);
            },
            |ep| {
                let c = ctx.lock().unwrap().take().expect("single worker");
                run_worker(ep, c);
            },
        )
        .unwrap();
    }

    #[test]
    fn unexpected_message_panics_worker() {
        let (_t, ctx) = make_ctx(1, 30);
        let ctx = std::sync::Mutex::new(Some(ctx));
        let err = run_cluster(
            1,
            CostModel::free(),
            |ep| {
                // EvalResult is a worker→master message; sending it down is
                // a protocol violation.
                ep.send_bytes(1, to_bytes(&Msg::EvalResult { counts: vec![] }));
                let _ = ep.recv_from(1);
            },
            |ep| {
                let c = ctx.lock().unwrap().take().expect("single worker");
                run_worker(ep, c);
            },
        )
        .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("unexpected"), "got: {msg}");
    }
}
