//! One-call drivers: run p²-mdie or the sequential baseline on a problem
//! and get back a full report. Used by the evaluation sweeps, the
//! benchmarks, and the examples.

use crate::report::{ParallelReport, SequentialReport};
use crate::strategy::Strategy;
use p2mdie_cluster::{ChaosConfig, ClusterError, CostModel};
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::settings::Width;
use std::time::Instant;

/// Which substrate carries the cluster's messages.
#[derive(Clone, Debug, Default)]
pub enum TransportKind {
    /// Simulated ranks: threads in this process joined by channels. The
    /// default — fastest, zero setup, and the configuration all the
    /// paper-shaped numbers are taken on.
    #[default]
    InProcess,
    /// Real OS worker processes joined by a localhost TCP mesh (the
    /// `p2mdie-worker` binary, spawned once per rank). Same deterministic
    /// virtual time, same induced theory; see [`crate::remote`].
    Tcp(crate::remote::TcpConfig),
}

/// What the run does when a worker rank dies mid-run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Fail the run with a rank-tagged error (the legacy behaviour, and
    /// the default — every paper-shaped number is taken under it, and the
    /// protocol stays byte-for-byte unchanged).
    #[default]
    Abort,
    /// Self-heal: abort the epoch, repartition the dead rank's examples
    /// over the survivors, resync the live set by replaying the accepted
    /// theory, and resume over the shrunk ring (see
    /// [`crate::master::run_master_recovering`]).
    Repartition {
        /// How many rank deaths to absorb before failing the run anyway.
        max_rank_losses: u32,
    },
}

/// Configuration of one parallel run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of workers `p`.
    pub workers: usize,
    /// Pipeline width `W` (`Width::Unlimited` = the paper's "nolimit").
    pub width: Width,
    /// Virtual-time cost model.
    pub model: CostModel,
    /// Seed for the random example partitioning.
    pub seed: u64,
    /// Re-deal the live examples to the workers before every epoch
    /// (paper §4.1's rejected alternative — expensive in communication;
    /// implemented so that cost can be measured).
    pub repartition: bool,
    /// Ship the compiled background KB to every worker as a serialized
    /// snapshot (`Msg::KbSnapshot`) instead of assuming shared data:
    /// workers start with an *empty* KB and adopt the master's in one
    /// transfer — the multi-process deployment shape. Off by default, so
    /// the paper's Table 4 communication volumes (which assume a
    /// distributed file system) stay reproducible.
    pub ship_kb: bool,
    /// The message substrate: in-process threads (default) or real worker
    /// processes over TCP. A TCP run always ships the KB (worker processes
    /// have no shared memory to inherit it from).
    pub transport: TransportKind,
    /// What to do when a worker rank dies mid-run.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault injection for in-process runs: wrap each listed
    /// worker rank's transport in a
    /// [`ChaosTransport`](p2mdie_cluster::ChaosTransport) with its own
    /// configuration (test-only seam; empty in production use). Multiple
    /// entries inject faults into multiple ranks of the same run — the
    /// seam the second-death recovery tests use.
    pub chaos: Vec<(usize, ChaosConfig)>,
    /// How the ranks divide the run: the paper's data-parallel pipeline
    /// (default), hypothesis-parallel lattice slicing, or constraint-driven
    /// independent search (see [`crate::strategy`]). The default routes
    /// through the exact pre-seam code path; `repartition`, `recovery`, and
    /// `chaos` only apply to it.
    pub strategy: Strategy,
}

impl ParallelConfig {
    /// A config with the Beowulf-2005 cost model.
    pub fn new(workers: usize, width: Width, seed: u64) -> Self {
        ParallelConfig {
            workers,
            width,
            model: CostModel::beowulf_2005(),
            seed,
            repartition: false,
            ship_kb: false,
            transport: TransportKind::InProcess,
            recovery: RecoveryPolicy::default(),
            chaos: Vec::new(),
            strategy: Strategy::default(),
        }
    }

    /// Selects the parallelization strategy (default
    /// [`Strategy::DataPipeline`], the paper's algorithm).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables per-epoch repartitioning (§4.1 variant).
    pub fn with_repartition(mut self) -> Self {
        self.repartition = true;
        self
    }

    /// Enables snapshot-based KB shipping (workers start empty and receive
    /// the compiled KB as one `Msg::KbSnapshot` transfer).
    pub fn with_kb_shipping(mut self) -> Self {
        self.ship_kb = true;
        self
    }

    /// Selects the message substrate ([`TransportKind::Tcp`] spawns real
    /// worker processes over a localhost TCP mesh).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Selects the worker-death recovery policy (default
    /// [`RecoveryPolicy::Abort`]).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Injects deterministic transport faults into a worker rank of an
    /// in-process run (test seam for exercising the recovery protocol).
    /// May be called repeatedly to fault several ranks in one run.
    pub fn with_chaos(mut self, rank: usize, chaos: ChaosConfig) -> Self {
        self.chaos.push((rank, chaos));
        self
    }
}

/// Runs p²-mdie on `engine` × `examples` with `cfg`.
///
/// The engine (background knowledge, modes, settings) is shared by all
/// ranks, mirroring the paper's distributed-file-system assumption; each
/// worker clones it so `mark_covered` can grow its local copy of `B`.
///
/// Thin wrapper: this submits exactly one learning job to an ephemeral
/// single-job dispatch in [`crate::scheduler`], which builds a fresh mesh,
/// walks the job through the service lifecycle, and tears the mesh down.
/// The wire framing is the legacy one, so reports stay bit-identical to
/// the pre-service implementation.
pub fn run_parallel(
    engine: &IlpEngine,
    examples: &Examples,
    cfg: &ParallelConfig,
) -> Result<ParallelReport, ClusterError> {
    match &cfg.transport {
        TransportKind::Tcp(tcp) => {
            crate::scheduler::one_shot_parallel_tcp(engine, examples, cfg, tcp)
        }
        TransportKind::InProcess => crate::scheduler::one_shot_parallel(engine, examples, cfg),
    }
}

/// Each simulated rank's fair share of the machine's cores: an explicit
/// non-zero `eval_threads` is kept as-is, `0` (auto) divides the available
/// parallelism by the number of ranks evaluating concurrently.
pub(crate) fn threads_per_worker(configured: usize, workers: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / workers.max(1)).max(1)
}

/// Runs the sequential baseline (Figure 1) and prices it with the same
/// cost model: `T(1) = total_steps × t_step` — no communication, exactly
/// like the paper's single-processor runs.
pub fn run_sequential_timed(
    engine: &IlpEngine,
    examples: &Examples,
    model: &CostModel,
) -> SequentialReport {
    let started = Instant::now();
    let out = engine.run_sequential(examples);
    SequentialReport {
        theory: out.theory.iter().map(|r| r.clause.clone()).collect(),
        epochs: out.epochs as u32,
        set_aside: out.set_aside as u32,
        vtime: model.compute_time(out.steps),
        steps: out.steps,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_ilp::modes::ModeSet;
    use p2mdie_ilp::settings::Settings;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// Multiples of 6 or 10 among 1..120: two target clauses to learn.
    fn problem() -> (IlpEngine, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=120i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(t.intern("div3"), vec![Term::Int(i)]));
            }
            if i % 5 == 0 {
                kb.assert_fact(Literal::new(t.intern("div5"), vec![Term::Int(i)]));
            }
        }
        let modes = ModeSet::parse(
            &t,
            "special(+num)",
            &[(1, "even(+num)"), (1, "div3(+num)"), (1, "div5(+num)")],
        )
        .unwrap();
        let tgt = t.intern("special");
        let ex = Examples::new(
            (1..=120i64)
                .filter(|i| i % 6 == 0 || i % 10 == 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            (1..=120i64)
                .filter(|i| i % 6 != 0 && i % 10 != 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        let engine = IlpEngine::new(
            kb,
            modes,
            Settings {
                min_pos: 2,
                noise: 0,
                max_body: 3,
                ..Settings::default()
            },
        );
        (engine, ex)
    }

    fn check_complete_and_consistent(
        engine: &IlpEngine,
        ex: &Examples,
        clauses: &[p2mdie_logic::clause::Clause],
    ) {
        let mut covered = p2mdie_ilp::bitset::Bitset::new(ex.num_pos());
        for c in clauses {
            let cov = engine.evaluate(c, ex, None, None);
            covered.union_with(&cov.pos);
            assert_eq!(cov.neg_count(), 0, "inconsistent clause in theory");
        }
        assert_eq!(
            covered.count(),
            ex.num_pos(),
            "theory must cover all positives"
        );
    }

    #[test]
    fn parallel_learns_complete_consistent_theory() {
        let (engine, ex) = problem();
        for p in [1, 2, 4] {
            let cfg = ParallelConfig::new(p, Width::Unlimited, 42);
            let rep = run_parallel(&engine, &ex, &cfg).unwrap();
            assert!(!rep.stalled, "p={p} stalled");
            assert_eq!(rep.set_aside, 0, "p={p} set examples aside");
            check_complete_and_consistent(&engine, &ex, &rep.clauses());
            assert!(rep.vtime > 0.0);
            assert!(rep.total_bytes > 0);
        }
    }

    #[test]
    fn width_limit_also_learns() {
        let (engine, ex) = problem();
        let cfg = ParallelConfig::new(2, Width::Limit(2), 42);
        let rep = run_parallel(&engine, &ex, &cfg).unwrap();
        check_complete_and_consistent(&engine, &ex, &rep.clauses());
    }

    #[test]
    fn runs_are_deterministic() {
        let (engine, ex) = problem();
        let cfg = ParallelConfig::new(3, Width::Limit(5), 7);
        let a = run_parallel(&engine, &ex, &cfg).unwrap();
        let b = run_parallel(&engine, &ex, &cfg).unwrap();
        assert_eq!(a.clauses(), b.clauses());
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert!((a.vtime - b.vtime).abs() < 1e-12);
    }

    #[test]
    fn different_partition_seeds_may_change_traffic_but_not_quality() {
        let (engine, ex) = problem();
        let a = run_parallel(&engine, &ex, &ParallelConfig::new(2, Width::Unlimited, 1)).unwrap();
        let b = run_parallel(&engine, &ex, &ParallelConfig::new(2, Width::Unlimited, 2)).unwrap();
        check_complete_and_consistent(&engine, &ex, &a.clauses());
        check_complete_and_consistent(&engine, &ex, &b.clauses());
    }

    /// Snapshot-shipped workers (empty KB + one `Msg::KbSnapshot`) must
    /// learn exactly the theory the shared-data workers learn, with the
    /// snapshot's bytes showing up in the traffic statistics.
    #[test]
    fn kb_shipping_learns_identically_and_counts_the_transfer() {
        let (engine, ex) = problem();
        for p in [1, 3] {
            let shared =
                run_parallel(&engine, &ex, &ParallelConfig::new(p, Width::Unlimited, 42)).unwrap();
            let cfg = ParallelConfig::new(p, Width::Unlimited, 42).with_kb_shipping();
            let shipped = run_parallel(&engine, &ex, &cfg).unwrap();
            assert_eq!(shared.clauses(), shipped.clauses(), "p={p} theory drifted");
            assert_eq!(shared.epochs, shipped.epochs);
            assert!(
                shipped.total_bytes > shared.total_bytes,
                "p={p}: the KB transfer must be byte-accounted ({} vs {})",
                shipped.total_bytes,
                shared.total_bytes
            );
            check_complete_and_consistent(&engine, &ex, &shipped.clauses());
        }
    }

    #[test]
    fn kb_shipping_is_deterministic() {
        let (engine, ex) = problem();
        let cfg = ParallelConfig::new(2, Width::Limit(5), 7).with_kb_shipping();
        let a = run_parallel(&engine, &ex, &cfg).unwrap();
        let b = run_parallel(&engine, &ex, &cfg).unwrap();
        assert_eq!(a.clauses(), b.clauses());
        assert_eq!(a.total_bytes, b.total_bytes);
        assert!((a.vtime - b.vtime).abs() < 1e-12);
    }

    #[test]
    fn repartition_variant_learns_the_same_concept() {
        let (engine, ex) = problem();
        let cfg = ParallelConfig::new(3, Width::Limit(10), 42).with_repartition();
        let rep = run_parallel(&engine, &ex, &cfg).unwrap();
        assert!(!rep.stalled);
        check_complete_and_consistent(&engine, &ex, &rep.clauses());
    }

    #[test]
    fn repartition_costs_more_communication() {
        // The paper's stated reason for rejecting repartitioning: "the high
        // communication cost of repartitioning". Measure it.
        let (engine, ex) = problem();
        let stat =
            run_parallel(&engine, &ex, &ParallelConfig::new(3, Width::Limit(10), 42)).unwrap();
        let repa = run_parallel(
            &engine,
            &ex,
            &ParallelConfig::new(3, Width::Limit(10), 42).with_repartition(),
        )
        .unwrap();
        // Even on this tiny problem with 1-argument examples the overhead
        // is >50%; on the paper-shaped datasets it is several-fold (see
        // the ablation bench).
        assert!(
            repa.total_bytes as f64 > 1.5 * stat.total_bytes as f64,
            "repartitioning must ship far more bytes ({} vs {})",
            repa.total_bytes,
            stat.total_bytes
        );
    }

    #[test]
    fn repartition_is_deterministic() {
        let (engine, ex) = problem();
        let cfg = ParallelConfig::new(3, Width::Limit(5), 11).with_repartition();
        let a = run_parallel(&engine, &ex, &cfg).unwrap();
        let b = run_parallel(&engine, &ex, &cfg).unwrap();
        assert_eq!(a.clauses(), b.clauses());
        assert_eq!(a.total_bytes, b.total_bytes);
    }

    #[test]
    fn sequential_baseline_reports_virtual_time() {
        let (engine, ex) = problem();
        let model = CostModel {
            sec_per_step: 1e-6,
            ..CostModel::free()
        };
        let rep = run_sequential_timed(&engine, &ex, &model);
        assert!(rep.steps > 0);
        assert!((rep.vtime - rep.steps as f64 * 1e-6).abs() < 1e-9);
        check_complete_and_consistent(&engine, &ex, &rep.theory);
    }

    #[test]
    fn more_workers_reduce_epochs() {
        let (engine, ex) = problem();
        let seq = run_sequential_timed(&engine, &ex, &CostModel::free());
        let par =
            run_parallel(&engine, &ex, &ParallelConfig::new(4, Width::Unlimited, 42)).unwrap();
        assert!(
            par.epochs <= seq.epochs,
            "parallel epochs {} should not exceed sequential {}",
            par.epochs,
            seq.epochs
        );
    }
}
