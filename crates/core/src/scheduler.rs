//! ILP-as-a-service: a resident cluster that runs many [`JobSpec`]s over
//! one standing mesh, plus the ephemeral single-job dispatch the one-shot
//! entry points are thin wrappers over.
//!
//! # The resident service
//!
//! [`Service::new`] builds the mesh **once** — spawn the ranks, ship the
//! compiled KB snapshot once — and keeps the workers resident: between
//! jobs each worker parks in an idle loop (`run_resident_worker`) with
//! the adopted KB still loaded. Submitting a job ships only what is
//! job-specific (role, modes, settings, and the example subsets inside the
//! per-rank [`Msg::SubmitJob`] frames); the expensive part of a cold start
//! — mesh construction and the KB transfer — is paid once per service
//! instead of once per run. The same loop serves a TCP mesh of real
//! `p2mdie-worker` processes ([`Service::new_tcp`]): a remote worker that
//! receives a `SubmitJob` instead of the legacy `Configure` bootstrap
//! switches into the identical resident loop.
//!
//! Every worker runs each job on a **pristine clone** of the resident KB:
//! accepted rules assert into the job's copy and vanish with it, so
//! concurrent clients cannot contaminate each other's background theory —
//! the property the differential tests in `crates/core/tests/service.rs`
//! pin (any interleaving of submissions is bit-identical to each job run
//! alone on a fresh mesh).
//!
//! # Queuing and fairness
//!
//! Jobs queue FIFO *within* their scheduling class (`JobKind::class`:
//! coverage queries / rule searches / full learning runs) and the
//! scheduler round-robins *across* non-empty classes, so a backlog of
//! long learning runs cannot starve a quick coverage query submitted
//! behind them.
//!
//! # Backpressure rules
//!
//! Two layers, both explicit:
//!
//! 1. **Client → service**: the submission queue is bounded
//!    ([`ServiceConfig::queue_cap`]). [`Service::submit`] never blocks —
//!    a full queue returns [`SubmitError::Backpressure`] and the client
//!    decides whether to retry, drop, or wait on an outstanding
//!    [`JobHandle`].
//! 2. **Master → worker**: a worker runs one job at a time and says so —
//!    its [`Msg::JobAccepted`] advertises `queue_free: 0`, and the master
//!    honours the contract by never sending a rank another
//!    [`Msg::SubmitJob`] before that job's [`Msg::JobResult`] drained.
//!    Dispatch is therefore serialized over the mesh; concurrency lives in
//!    the queue, not in interleaved wire traffic.
//!
//! Cancellation is advisory and queue-side: [`JobHandle::cancel`] marks
//! the id, the scheduler fails the job at dequeue time (before any
//! dispatch), and broadcasts [`Msg::CancelJob`] so the resident workers
//! observe the frame; a job already on the mesh runs to completion.
//!
//! # Introspection
//!
//! [`Service::metrics`] is the flight-recorder readout: the scheduler
//! broadcasts the protocol-v6 [`Msg::MetricsQuery`] between jobs (when
//! every worker is idle) and each rank answers [`Msg::MetricsReport`]
//! with a [`MetricsSnapshot`] built from its endpoint state, its
//! per-rank metrics registry, and the prover hot counters. The same dump
//! is taken once more right before shutdown and returned in
//! [`ServiceReport::worker_metrics`]. Job lifecycle transitions emit
//! `job_state` trace events, and the scheduler maintains queue-depth /
//! class-fairness gauges plus a backpressure counter in rank 0's
//! registry.
//!
//! # Ephemeral dispatch
//!
//! The pre-service entry points — [`crate::driver::run_parallel`],
//! [`crate::baselines::run_coverage_parallel`], and their TCP analogues —
//! are thin wrappers over the `one_shot_*` functions here: build a mesh,
//! walk **one** job through the same [`JobState`] lifecycle using the
//! legacy wire framing (no job-control frames), tear the mesh down. Their
//! reports stay bit-identical to the pre-service implementations: theory,
//! coverage, steps, vtime, and Table-4 traffic are pinned by the existing
//! driver/baseline/TCP tests.

use crate::bag::RuleBag;
use crate::baselines::{
    baseline_master, eval_round, run_baseline_worker, BaselineReport, EvalGranularity,
};
use crate::driver::{threads_per_worker, ParallelConfig, RecoveryPolicy};
use crate::job::{
    JobId, JobKind, JobOutcome, JobOutput, JobSpec, JobState, Lifecycle, CLASS_NAMES, JOB_CLASSES,
};
use crate::master::{
    evaluate_bag, run_master, run_master_recovering, run_master_repartition, ship_kb,
};
use crate::partition::partition_examples;
use crate::protocol::{Msg, WorkerConfig, WorkerRole};
use crate::remote::{bootstrap_workers, spawn_worker, TcpConfig, WorkerExit};
use crate::report::{JobAccounting, ParallelReport};
use crate::strategy::{run_strategy_master, run_strategy_worker, Strategy, StrategyWorkerContext};
use crate::worker::{run_worker, WorkerContext};
use p2mdie_cluster::codec::from_bytes;
use p2mdie_cluster::comm::{CommError, CommFailure, Endpoint, LinkFault};
use p2mdie_cluster::net::run_cluster_tcp;
use p2mdie_cluster::transport::Transport;
use p2mdie_cluster::{
    maybe_chaos, run_cluster, run_cluster_with, ClusterError, ClusterOutcome, CostModel,
};
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::{Clause, Literal};
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_obs::{event, metrics, MetricEntry, MetricValue, MetricsSnapshot};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Configuration of a resident [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of resident worker ranks.
    pub workers: usize,
    /// Virtual-time cost model for the whole mesh lifetime.
    pub model: CostModel,
    /// Bound on the submission queue; a full queue makes
    /// [`Service::submit`] return [`SubmitError::Backpressure`].
    pub queue_cap: usize,
    /// Ship the compiled KB once at mesh construction (the resident
    /// deployment shape, and always on for TCP meshes). Off, in-process
    /// workers clone the engine's KB directly (shared-data assumption).
    pub ship_kb: bool,
}

impl ServiceConfig {
    /// A config with the Beowulf-2005 cost model, a 16-job queue, and KB
    /// shipping on.
    pub fn new(workers: usize) -> Self {
        ServiceConfig {
            workers,
            model: CostModel::beowulf_2005(),
            queue_cap: 16,
            ship_kb: true,
        }
    }

    /// Sets the cost model.
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the submission-queue bound.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }
}

/// Why a submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full; retry after a job drains.
    Backpressure,
    /// The service is shut down (or its mesh failed).
    ServiceDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure => write!(f, "submission queue full (backpressure)"),
            SubmitError::ServiceDown => write!(f, "service is down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Whole-mesh statistics of one service lifetime, returned by
/// [`Service::shutdown`]. Per-job numbers live in each
/// [`JobOutcome::accounting`]; these are the standing-mesh totals
/// (including the one-time KB ship and the idle-loop framing).
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Jobs dispatched to the mesh (cancelled-at-queue jobs excluded).
    pub jobs_run: u32,
    /// Final virtual clock at the master.
    pub master_vtime: f64,
    /// Final virtual clocks of the workers.
    pub worker_vtimes: Vec<f64>,
    /// Mesh-lifetime inference steps per worker.
    pub worker_steps: Vec<u64>,
    /// Mesh-lifetime communication in bytes.
    pub total_bytes: u64,
    /// Mesh-lifetime messages.
    pub total_messages: u64,
    /// Sends the transport could not deliver (0 on a clean lifetime).
    pub dropped_sends: u64,
    /// Final per-worker metrics snapshots (index 0 is rank 1), collected
    /// over the wire with [`Msg::MetricsQuery`] just before the mesh
    /// stopped — the same dump [`Service::metrics`] returns mid-lifetime.
    pub worker_metrics: Vec<MetricsSnapshot>,
}

enum Request {
    Submit(QueuedJob),
    /// Introspection: broadcast [`Msg::MetricsQuery`] to the (idle)
    /// workers, reply with their snapshots. Served between jobs, never
    /// mid-dispatch, so the query frames cannot interleave with a job's
    /// own protocol.
    Metrics(mpsc::Sender<Vec<MetricsSnapshot>>),
    Shutdown,
}

struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    reply: mpsc::Sender<JobOutcome>,
}

/// A handle on one submitted job.
pub struct JobHandle {
    id: JobId,
    rx: mpsc::Receiver<JobOutcome>,
    cancelled: Arc<Mutex<HashSet<u64>>>,
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Requests cancellation. Advisory: a job still queued fails at
    /// dequeue time with a "cancelled" outcome; a job already dispatched
    /// runs to completion.
    pub fn cancel(&self) {
        self.cancelled
            .lock()
            .expect("cancellation set lock poisoned")
            .insert(self.id.0);
    }

    /// Blocks until the job reaches a terminal state. A service that dies
    /// (mesh failure or shutdown) before the job finishes yields a
    /// `Failed` outcome rather than a hang.
    pub fn wait(self) -> JobOutcome {
        let id = self.id;
        self.rx.recv().unwrap_or_else(|_| JobOutcome {
            id,
            state: JobState::Failed,
            output: None,
            error: Some("service terminated before the job finished".to_owned()),
            accounting: JobAccounting::default(),
        })
    }
}

/// A resident ILP cluster serving [`JobSpec`] submissions.
///
/// The mesh (in-process threads or TCP worker processes) is built once at
/// construction and lives until [`Service::shutdown`]; see the
/// [module docs](self) for queuing, fairness, and backpressure.
pub struct Service {
    tx: mpsc::SyncSender<Request>,
    next_id: AtomicU64,
    cancelled: Arc<Mutex<HashSet<u64>>>,
    handle: std::thread::JoinHandle<Result<ServiceReport, ClusterError>>,
}

impl Service {
    /// Builds an in-process resident mesh of `cfg.workers` ranks around a
    /// clone of `engine` and starts serving submissions.
    pub fn new(engine: &IlpEngine, cfg: ServiceConfig) -> Self {
        Service::start(engine, cfg, None)
    }

    /// Builds a resident mesh of real `p2mdie-worker` OS processes over
    /// localhost TCP. The KB is always shipped (worker processes have no
    /// shared memory to inherit it from).
    pub fn new_tcp(engine: &IlpEngine, cfg: ServiceConfig, tcp: &TcpConfig) -> Self {
        Service::start(engine, cfg, Some(tcp.clone()))
    }

    fn start(engine: &IlpEngine, cfg: ServiceConfig, tcp: Option<TcpConfig>) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Request>(cfg.queue_cap.max(1));
        let cancelled = Arc::new(Mutex::new(HashSet::new()));
        let thread_cancelled = Arc::clone(&cancelled);
        let engine = engine.clone();
        let handle = std::thread::spawn(move || -> Result<ServiceReport, ClusterError> {
            let outcome = match tcp {
                None => serve_in_process(&engine, &cfg, rx, &thread_cancelled)?,
                Some(tcp) => serve_tcp(&engine, &cfg, &tcp, rx, &thread_cancelled)?,
            };
            let (jobs_run, worker_metrics) = outcome.result;
            Ok(ServiceReport {
                jobs_run,
                master_vtime: outcome.master_vtime,
                worker_vtimes: outcome.worker_vtimes,
                worker_steps: outcome.worker_steps,
                total_bytes: outcome.stats.total_bytes(),
                total_messages: outcome.stats.total_messages(),
                dropped_sends: outcome.dropped_sends,
                worker_metrics,
            })
        });
        Service {
            tx,
            next_id: AtomicU64::new(1),
            cancelled,
            handle,
        }
    }

    /// Submits a job. Non-blocking: a full queue is reported as
    /// [`SubmitError::Backpressure`] instead of stalling the caller.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (reply, rx) = mpsc::channel();
        match self
            .tx
            .try_send(Request::Submit(QueuedJob { id, spec, reply }))
        {
            Ok(()) => Ok(JobHandle {
                id,
                rx,
                cancelled: Arc::clone(&self.cancelled),
            }),
            Err(mpsc::TrySendError::Full(_)) => {
                metrics::rank_registry(0)
                    .counter("scheduler_backpressure_total")
                    .inc();
                Err(SubmitError::Backpressure)
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(SubmitError::ServiceDown),
        }
    }

    /// Introspection: per-worker metrics snapshots (index 0 is rank 1),
    /// collected over the wire with the protocol-v6
    /// [`Msg::MetricsQuery`] / [`Msg::MetricsReport`] pair. The request
    /// queues behind already-submitted jobs (the scheduler answers it
    /// between dispatches, when every worker is idle), so the snapshots
    /// are consistent: no job is mid-flight while they are taken. Workers
    /// always answer — the pair works with sampling and tracing off.
    pub fn metrics(&self) -> Result<Vec<MetricsSnapshot>, SubmitError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Request::Metrics(reply))
            .map_err(|_| SubmitError::ServiceDown)?;
        rx.recv().map_err(|_| SubmitError::ServiceDown)
    }

    /// Drains the queue, stops the mesh (`Msg::Stop` at idle), and returns
    /// the mesh-lifetime report. Jobs already queued still run; their
    /// handles resolve before this returns.
    pub fn shutdown(self) -> Result<ServiceReport, ClusterError> {
        // A full queue blocks here until the scheduler drains a slot; a
        // dead scheduler makes send fail, which join() then explains.
        let _ = self.tx.send(Request::Shutdown);
        drop(self.tx);
        self.handle.join().unwrap_or_else(|payload| {
            Err(ClusterError::Net {
                message: format!(
                    "service thread panicked: {}",
                    payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic payload>")
                ),
            })
        })
    }
}

fn serve_in_process(
    engine: &IlpEngine,
    cfg: &ServiceConfig,
    rx: mpsc::Receiver<Request>,
    cancelled: &Mutex<HashSet<u64>>,
) -> Result<ClusterOutcome<(u32, Vec<MetricsSnapshot>)>, ClusterError> {
    let bases: Vec<Mutex<Option<KnowledgeBase>>> = (0..cfg.workers)
        .map(|_| {
            Mutex::new(Some(if cfg.ship_kb {
                engine.with_empty_kb().kb
            } else {
                engine.kb.clone()
            }))
        })
        .collect();
    let ship = cfg.ship_kb;
    run_cluster(
        cfg.workers,
        cfg.model,
        move |ep| scheduler_master(ep, engine, &rx, cancelled, ship),
        |ep| {
            let mut base = bases[ep.rank() - 1]
                .lock()
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {}: resident-KB lock poisoned by an earlier panic",
                        ep.rank()
                    )
                })
                .take()
                .expect("each resident KB is taken exactly once");
            let _ = run_resident_worker(ep, &mut base);
        },
    )
}

fn serve_tcp(
    engine: &IlpEngine,
    cfg: &ServiceConfig,
    tcp: &TcpConfig,
    rx: mpsc::Receiver<Request>,
    cancelled: &Mutex<HashSet<u64>>,
) -> Result<ClusterOutcome<(u32, Vec<MetricsSnapshot>)>, ClusterError> {
    let bin = tcp.resolve_worker_bin()?;
    run_cluster_tcp(
        cfg.workers,
        cfg.model,
        tcp.timeout,
        |rank, addr| spawn_worker(&bin, rank, addr, tcp),
        // TCP workers always bootstrap from the snapshot.
        move |ep| scheduler_master(ep, engine, &rx, cancelled, true),
    )
}

/// The master side of the resident service: refill the class queues from
/// the submission channel, round-robin across classes, dispatch one job at
/// a time, stop the mesh when told to shut down and the queues are dry.
/// Returns the dispatch count and the shutdown metrics dump.
fn scheduler_master<T: Transport>(
    ep: &mut Endpoint<T>,
    engine: &IlpEngine,
    rx: &mpsc::Receiver<Request>,
    cancelled: &Mutex<HashSet<u64>>,
    ship: bool,
) -> (u32, Vec<MetricsSnapshot>) {
    if ship {
        ship_kb(ep, &engine.kb);
    }
    let registry = metrics::rank_registry(ep.rank());
    let mut queues: Vec<VecDeque<QueuedJob>> = (0..JOB_CLASSES).map(|_| VecDeque::new()).collect();
    let mut next_class = 0usize;
    let mut jobs_run = 0u32;
    let mut open = true;
    'serve: loop {
        // Refill: drain everything already submitted without blocking;
        // block only when there is nothing to run.
        loop {
            let pending: usize = queues.iter().map(VecDeque::len).sum();
            if !open && pending == 0 {
                break 'serve;
            }
            let req = if pending == 0 {
                match rx.recv() {
                    Ok(req) => req,
                    Err(_) => {
                        open = false;
                        continue;
                    }
                }
            } else {
                match rx.try_recv() {
                    Ok(req) => req,
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            };
            match req {
                Request::Submit(job) => {
                    event!(
                        ep.tracer(),
                        "job_state",
                        ep.now(),
                        job = job.id.0,
                        state = "queued",
                    );
                    registry
                        .counter(&format!(
                            "scheduler_jobs_submitted_total{{class=\"{}\"}}",
                            CLASS_NAMES[job.spec.kind.class()]
                        ))
                        .inc();
                    queues[job.spec.kind.class()].push_back(job);
                }
                Request::Metrics(reply) => {
                    // Served here, between jobs, so every worker is parked
                    // in its idle loop and the query cannot interleave
                    // with a job's own frames.
                    let _ = reply.send(collect_worker_metrics(ep));
                }
                Request::Shutdown => open = false,
            }
        }

        // Class-fairness introspection: depth per class plus the total,
        // sampled every time the scheduler picks its next job.
        for (c, q) in queues.iter().enumerate() {
            registry
                .gauge(&format!(
                    "scheduler_queue_depth{{class=\"{}\"}}",
                    CLASS_NAMES[c]
                ))
                .set(q.len() as f64);
        }
        registry
            .gauge("scheduler_queue_depth")
            .set(queues.iter().map(VecDeque::len).sum::<usize>() as f64);

        // FIFO within a class, round-robin across non-empty classes.
        let class = (0..JOB_CLASSES)
            .map(|i| (next_class + i) % JOB_CLASSES)
            .find(|&c| !queues[c].is_empty())
            .expect("the refill loop only falls through with work pending");
        next_class = (class + 1) % JOB_CLASSES;
        let job = queues[class].pop_front().expect("class just checked");

        let was_cancelled = cancelled
            .lock()
            .map(|mut set| set.remove(&job.id.0))
            .unwrap_or(false);
        let outcome = if was_cancelled {
            // Nothing was dispatched; tell the (idle) workers anyway so the
            // advisory frame is exercised end to end.
            ep.broadcast(&Msg::CancelJob { id: job.id.0 });
            registry.counter("scheduler_jobs_cancelled_total").inc();
            let mut lifecycle = Lifecycle::new(job.id);
            lifecycle.advance(JobState::Failed);
            event!(
                ep.tracer(),
                "job_state",
                ep.now(),
                job = job.id.0,
                state = "failed",
            );
            JobOutcome {
                id: job.id,
                state: lifecycle.state,
                output: None,
                error: Some("cancelled before dispatch".to_owned()),
                accounting: JobAccounting::default(),
            }
        } else {
            jobs_run += 1;
            registry
                .counter(&format!(
                    "scheduler_jobs_dispatched_total{{class=\"{}\"}}",
                    CLASS_NAMES[class]
                ))
                .inc();
            let outcome = dispatch_job(ep, engine, job.id, &job.spec);
            // A cancel that raced the running job arrived too late to stop
            // it — the job completed legally. Consume the mark (so it can
            // never leak onto a later dequeue pass) and still broadcast the
            // advisory frame; every worker treats a finished job's
            // CancelJob as a no-op.
            let late_cancel = cancelled
                .lock()
                .map(|mut set| set.remove(&job.id.0))
                .unwrap_or(false);
            if late_cancel {
                ep.broadcast(&Msg::CancelJob { id: job.id.0 });
            }
            outcome
        };
        // A dropped handle is fine; the job still ran to completion.
        let _ = job.reply.send(outcome);
    }
    // The shutdown metrics dump: one last introspection round while the
    // mesh is still up, returned through [`ServiceReport`].
    let dump = collect_worker_metrics(ep);
    ep.broadcast(&Msg::Stop);
    (jobs_run, dump)
}

/// One introspection round: broadcast [`Msg::MetricsQuery`] to every
/// (idle) worker and gather the [`Msg::MetricsReport`]s in rank order.
fn collect_worker_metrics<T: Transport>(ep: &mut Endpoint<T>) -> Vec<MetricsSnapshot> {
    let p = ep.workers();
    ep.broadcast(&Msg::MetricsQuery);
    (1..=p)
        .map(|k| {
            let msg = Msg::recv(ep, k, "a MetricsReport");
            let Msg::MetricsReport { snapshot } = msg else {
                panic!("scheduler: expected MetricsReport from rank {k}, got {msg:?}");
            };
            snapshot
        })
        .collect()
}

/// A worker's answer to [`Msg::MetricsQuery`]: endpoint-level facts that
/// are always valid (virtual clock, inference steps, this rank's send
/// totals), this rank's [`metrics::rank_registry`], and the process-wide
/// prover hot counters. The endpoint facts make the snapshot consistent
/// with [`crate::report::JobAccounting`] deltas whether or not sampling
/// is on. In-process meshes share one address space, so the prover hot
/// counters repeat across ranks there; over TCP they are genuinely
/// per-worker.
fn worker_metrics_snapshot<T: Transport>(ep: &Endpoint<T>) -> MetricsSnapshot {
    let me = ep.rank();
    let (bytes, msgs) = ep
        .stats()
        .send_row(me)
        .iter()
        .fold((0u64, 0u64), |(b, m), (rb, rm, _)| (b + rb, m + rm));
    let mut entries = vec![
        MetricEntry {
            name: "worker_vtime_seconds".to_owned(),
            value: MetricValue::Gauge(ep.now()),
        },
        MetricEntry {
            name: "worker_inference_steps_total".to_owned(),
            value: MetricValue::Counter(ep.compute_steps()),
        },
        MetricEntry {
            name: "worker_sent_bytes_total".to_owned(),
            value: MetricValue::Counter(bytes),
        },
        MetricEntry {
            name: "worker_sent_messages_total".to_owned(),
            value: MetricValue::Counter(msgs),
        },
    ];
    entries.extend(metrics::rank_registry(me).snapshot().entries);
    entries.extend(metrics::hot::entries());
    MetricsSnapshot::from_entries(entries)
}

/// Runs one job over the resident mesh: per-rank [`Msg::SubmitJob`],
/// gather acceptances, run the kind's master protocol (which ends with the
/// job's own `Stop`, returning every worker to the idle loop), drain the
/// [`Msg::JobResult`]s, and account the deltas.
fn dispatch_job<T: Transport>(
    ep: &mut Endpoint<T>,
    engine: &IlpEngine,
    id: JobId,
    spec: &JobSpec,
) -> JobOutcome {
    let p = ep.workers();
    let mut job = Lifecycle::new(id);
    let t0 = ep.now();
    let bytes0 = ep.stats().total_bytes();
    let messages0 = ep.stats().total_messages();
    let steps0 = ep.compute_steps();

    job.advance(JobState::Dispatching);
    event!(
        ep.tracer(),
        "job_state",
        t0,
        job = id.0,
        state = "dispatching",
    );
    let settings = spec
        .settings
        .clone()
        .unwrap_or_else(|| engine.settings.clone());
    // Strategies apply to full learning runs only: a `RuleSearch` job's
    // global scoring sums per-rank counts (which full replication would
    // multiply by `p`), and coverage/baseline jobs have no search to
    // parallelize differently.
    let strategy = match &spec.kind {
        JobKind::Learn => spec.strategy,
        _ => Strategy::DataPipeline,
    };
    let (subsets, partition) = if strategy != Strategy::DataPipeline {
        // Non-default strategies replicate the full example set per rank.
        (vec![spec.examples.clone(); p], None)
    } else if spec.repartition {
        (vec![Examples::default(); p], None)
    } else {
        let (subsets, part) = partition_examples(&spec.examples, p, spec.seed);
        (subsets, Some(part))
    };
    let mut worker_settings = settings.clone();
    worker_settings.eval_threads = threads_per_worker(settings.eval_threads, p);
    let role = match &spec.kind {
        JobKind::Coverage { .. } | JobKind::BaselineLearn { .. } => WorkerRole::Coverage,
        JobKind::RuleSearch | JobKind::Learn => WorkerRole::Pipeline {
            width: spec.width,
            repartition: spec.repartition,
        },
    };
    for (i, subset) in subsets.iter().enumerate() {
        ep.send(
            i + 1,
            &Msg::SubmitJob {
                id: id.0,
                config: Box::new(WorkerConfig {
                    role: role.clone(),
                    modes: engine.modes.clone(),
                    settings: worker_settings.clone(),
                    strategy,
                    strategy_seed: spec.seed,
                }),
                pos: subset.pos.clone(),
                neg: subset.neg.clone(),
            },
        );
    }
    for k in 1..=p {
        let msg = Msg::recv(ep, k, "a JobAccepted");
        let Msg::JobAccepted {
            id: accepted,
            queue_free,
        } = msg
        else {
            panic!("scheduler: expected JobAccepted from rank {k}, got {msg:?}");
        };
        assert_eq!(accepted, id.0, "rank {k} accepted the wrong job");
        // The backpressure contract: a worker runs one job at a time, so
        // the slot it just consumed was its only one.
        assert_eq!(queue_free, 0, "rank {k} advertised a queue it cannot have");
    }

    job.advance(JobState::Running);
    event!(
        ep.tracer(),
        "job_state",
        ep.now(),
        job = id.0,
        state = "running",
    );
    let output = match &spec.kind {
        JobKind::Coverage { rules } => {
            ep.broadcast(&Msg::LoadExamples);
            let totals = eval_round(ep, rules);
            ep.broadcast(&Msg::Stop);
            JobOutput::Coverage(totals)
        }
        JobKind::RuleSearch => JobOutput::Rules(rule_search_master(ep, &settings)),
        JobKind::Learn => JobOutput::Learned(if strategy != Strategy::DataPipeline {
            run_strategy_master(ep, &settings, spec.examples.num_pos())
        } else if spec.repartition {
            run_master_repartition(ep, &settings, &spec.examples, spec.seed)
        } else {
            run_master(ep, &settings, spec.examples.num_pos())
        }),
        JobKind::BaselineLearn { granularity } => {
            let partition = partition
                .as_ref()
                .expect("baseline jobs partition statically");
            // `baseline_master` saturates and refines master-side with the
            // job's settings; rebuild the engine only when overridden.
            let holder;
            let master_engine = if spec.settings.is_some() {
                holder = IlpEngine {
                    kb: engine.kb.clone(),
                    modes: engine.modes.clone(),
                    settings: settings.clone(),
                };
                &holder
            } else {
                engine
            };
            let (theory, epochs, set_aside) =
                baseline_master(ep, master_engine, &spec.examples, partition, *granularity);
            JobOutput::BaselineLearned {
                theory,
                epochs,
                set_aside,
            }
        }
    };

    job.advance(JobState::Draining);
    event!(
        ep.tracer(),
        "job_state",
        ep.now(),
        job = id.0,
        state = "draining",
    );
    let mut worker_steps = vec![0u64; p];
    for k in 1..=p {
        let msg = Msg::recv(ep, k, "a JobResult");
        let Msg::JobResult {
            id: finished,
            steps,
        } = msg
        else {
            panic!("scheduler: expected JobResult from rank {k}, got {msg:?}");
        };
        assert_eq!(finished, id.0, "rank {k} drained the wrong job");
        worker_steps[k - 1] = steps;
    }

    job.advance(JobState::Done);
    event!(
        ep.tracer(),
        "job_state",
        ep.now(),
        job = id.0,
        state = "done",
    );
    JobOutcome {
        id,
        state: job.state,
        output: Some(output),
        error: None,
        accounting: JobAccounting {
            vtime: ep.now() - t0,
            master_steps: ep.compute_steps() - steps0,
            worker_steps,
            bytes: ep.stats().total_bytes() - bytes0,
            messages: ep.stats().total_messages() - messages0,
        },
    }
}

/// One pipelined rule-search epoch as a job (Fig. 5 steps 6–11): start the
/// `p` pipelines, pool the survivors, score the bag globally, and return
/// it best-first without consuming it.
fn rule_search_master<T: Transport>(
    ep: &mut Endpoint<T>,
    settings: &Settings,
) -> Vec<(Clause, u32, u32)> {
    let p = ep.workers();
    ep.broadcast(&Msg::LoadExamples);
    for k in 1..=p {
        ep.send(k, &Msg::StartPipeline { epoch: 1 });
    }
    let mut bag = RuleBag::new();
    for k in 1..=p {
        let msg = Msg::recv(ep, k, "RulesFound");
        let Msg::RulesFound { origin, rules, .. } = msg else {
            panic!("rule-search master: expected RulesFound from rank {k}, got {msg:?}");
        };
        for (clause, _, _) in rules {
            bag.insert(clause, origin);
        }
    }
    if !bag.is_empty() {
        evaluate_bag(ep, p, &mut bag);
    }
    ep.broadcast(&Msg::Stop);
    let mut out = Vec::with_capacity(bag.len());
    while let Some(rule) = bag.pick_best(settings.score) {
        let (pos, neg) = (rule.global_pos(), rule.global_neg());
        out.push((rule.clause, pos, neg));
    }
    out
}

/// The resident worker's idle loop: park between jobs with the adopted KB
/// loaded, run each [`Msg::SubmitJob`] on a pristine clone of it, return
/// to idle. `Stop` *at idle* is mesh shutdown (inside a job it merely ends
/// the job — the nested role loop consumes it); a closed master link at
/// idle is the [`WorkerExit::IdleDisconnect`] the worker binary maps to
/// its distinct exit code.
pub(crate) fn run_resident_worker<T: Transport>(
    ep: &mut Endpoint<T>,
    base: &mut KnowledgeBase,
) -> WorkerExit {
    let me = ep.rank();
    loop {
        let bytes = match ep.recv_from(0) {
            Ok(bytes) => bytes,
            Err(err) if matches!(err.fault, LinkFault::Closed) => {
                return WorkerExit::IdleDisconnect
            }
            Err(err) => std::panic::panic_any(CommFailure {
                rank: me,
                from: 0,
                expected: "a job-control frame".to_owned(),
                error: CommError::Closed(err),
            }),
        };
        let msg: Msg = match from_bytes(bytes) {
            Ok(msg) => msg,
            Err(error) => std::panic::panic_any(CommFailure {
                rank: me,
                from: 0,
                expected: "a job-control frame".to_owned(),
                error: CommError::Decode(error),
            }),
        };
        match msg {
            Msg::KbSnapshot(snap) => {
                let syms = base.symbols().clone();
                *base = KnowledgeBase::from_snapshot(*snap, syms)
                    .unwrap_or_else(|e| panic!("rank {me}: rejected KB snapshot: {e}"));
            }
            Msg::SubmitJob {
                id,
                config,
                pos,
                neg,
            } => run_submitted_job(ep, base, id, *config, pos, neg),
            // Advisory: the cancelled job never reached this rank.
            Msg::CancelJob { .. } => {}
            // Introspection: always answered, even with sampling and
            // tracing off — the endpoint facts in the snapshot are
            // maintained unconditionally.
            Msg::MetricsQuery => {
                let snapshot = worker_metrics_snapshot(ep);
                ep.send(0, &Msg::MetricsReport { snapshot });
            }
            Msg::Stop => return WorkerExit::Finished,
            other => panic!("worker {me}: unexpected idle-loop message {other:?}"),
        }
    }
}

/// One job on a resident worker: accept, run the role's legacy protocol
/// loop on a pristine KB clone until the job's `Stop`, report the step
/// delta. Crate-visible so the remote bootstrap can run the job that
/// switched it into resident mode.
pub(crate) fn run_submitted_job<T: Transport>(
    ep: &mut Endpoint<T>,
    base: &KnowledgeBase,
    id: u64,
    config: WorkerConfig,
    pos: Vec<Literal>,
    neg: Vec<Literal>,
) {
    ep.send(0, &Msg::JobAccepted { id, queue_free: 0 });
    let steps0 = ep.compute_steps();
    // A pristine clone per job: `MarkCovered` asserts accepted rules into
    // the engine's KB, and those must die with the job.
    let engine = IlpEngine {
        kb: base.clone(),
        modes: config.modes,
        settings: config.settings,
    };
    let local = Examples::new(pos, neg);
    match config.role {
        WorkerRole::Pipeline { width, repartition } => {
            if config.strategy != Strategy::DataPipeline {
                // Strategy jobs replicate: `local` is the full example set.
                run_strategy_worker(
                    ep,
                    StrategyWorkerContext::new(
                        engine,
                        local,
                        width,
                        config.strategy,
                        config.strategy_seed,
                    ),
                );
            } else {
                let mut ctx = WorkerContext::new(engine, local, width);
                ctx.repartition = repartition;
                run_worker(ep, ctx);
            }
        }
        WorkerRole::Coverage => run_baseline_worker(ep, engine, local),
    }
    ep.send(
        0,
        &Msg::JobResult {
            id,
            steps: ep.compute_steps() - steps0,
        },
    );
}

// ---------------------------------------------------------------------------
// Ephemeral dispatch: the one-shot entry points as single-job services.
// ---------------------------------------------------------------------------

/// The id every ephemeral (single-job) dispatch uses.
pub(crate) const EPHEMERAL_JOB: JobId = JobId(1);

/// End-of-run warning for a learning run that survived rank deaths: a
/// structured trace event when tracing is on, a stderr line otherwise, so
/// a recovered-but-degraded run is never silent (the counterpart of
/// the cluster layer's dropped-sends warning).
fn warn_rank_losses(losses: &[u32], master_vtime: f64) {
    if losses.is_empty() {
        return;
    }
    let tracer = p2mdie_obs::Tracer::for_rank(0);
    if tracer.on() {
        event!(
            tracer,
            "rank_losses_warning",
            master_vtime,
            losses = losses.len() as u64,
        );
    } else {
        eprintln!(
            "warning: run finished after {} rank loss(es) ({:?}) — \
             the theory was recovered by repartition-and-resume",
            losses.len(),
            losses
        );
    }
}

/// [`crate::driver::run_parallel`]'s in-process engine room: build a fresh
/// mesh, walk one learning job through the lifecycle using the legacy wire
/// framing, tear the mesh down. Bit-identical to the pre-service
/// implementation (same messages, same clocks, same traffic).
pub(crate) fn one_shot_parallel(
    engine: &IlpEngine,
    examples: &Examples,
    cfg: &ParallelConfig,
) -> Result<ParallelReport, ClusterError> {
    if cfg.strategy != Strategy::DataPipeline {
        return crate::strategy::one_shot_strategy(engine, examples, cfg);
    }
    let started = Instant::now();
    let mut job = Lifecycle::new(EPHEMERAL_JOB);
    job.advance(JobState::Dispatching);
    // Static mode partitions up front; repartition mode starts workers
    // empty (the master deals examples at every epoch). The recovering
    // master additionally needs the global-index map of the static deal.
    let (subsets, partition) = if cfg.repartition {
        (vec![Examples::default(); cfg.workers], None)
    } else {
        let (subsets, part) = partition_examples(examples, cfg.workers, cfg.seed);
        (subsets, Some(part))
    };
    // Simulated ranks run on real threads; split the physical cores among
    // them so each rank's coverage evaluation (see
    // `p2mdie_ilp::coverage::evaluate_rule_threads`) exploits its share
    // without oversubscribing the machine. An explicit `eval_threads` in
    // the caller's settings wins.
    let threads_per_rank = threads_per_worker(engine.settings.eval_threads, cfg.workers);
    let contexts: Vec<Mutex<Option<WorkerContext>>> = subsets
        .into_iter()
        .map(|local| {
            // With KB shipping the worker starts *empty* (the multi-process
            // deployment shape) and adopts the master's snapshot on its
            // first message; otherwise it clones the shared engine.
            let mut worker_engine = if cfg.ship_kb {
                engine.with_empty_kb()
            } else {
                engine.clone()
            };
            worker_engine.settings.eval_threads = threads_per_rank;
            let mut ctx = WorkerContext::new(worker_engine, local, cfg.width);
            ctx.repartition = cfg.repartition;
            Mutex::new(Some(ctx))
        })
        .collect();

    let settings = engine.settings.clone();
    let total_pos = examples.num_pos();

    fn take_ctx(contexts: &[Mutex<Option<WorkerContext>>], rank: usize) -> WorkerContext {
        contexts[rank - 1]
            .lock()
            .unwrap_or_else(|_| {
                panic!("rank {rank}: worker-context lock poisoned by an earlier panic")
            })
            .take()
            .expect("each worker context is taken exactly once")
    }

    job.advance(JobState::Running);
    let run = match &cfg.recovery {
        RecoveryPolicy::Abort => run_cluster(
            cfg.workers,
            cfg.model,
            |ep| {
                if cfg.ship_kb {
                    ship_kb(ep, &engine.kb);
                }
                if cfg.repartition {
                    run_master_repartition(ep, &settings, examples, cfg.seed)
                } else {
                    run_master(ep, &settings, total_pos)
                }
            },
            |ep| run_worker(ep, take_ctx(&contexts, ep.rank())),
        ),
        RecoveryPolicy::Repartition { max_rank_losses } => {
            for (rank, _) in &cfg.chaos {
                assert!(
                    (1..=cfg.workers).contains(rank),
                    "chaos injection targets a worker rank (got {rank})"
                );
            }
            run_cluster_with(
                cfg.workers,
                cfg.model,
                true,
                |rank, t| {
                    let chaos = cfg
                        .chaos
                        .iter()
                        .find(|(target, _)| *target == rank)
                        .map(|(_, c)| c.clone());
                    maybe_chaos(t, chaos)
                },
                |ep| {
                    if cfg.ship_kb {
                        ship_kb(ep, &engine.kb);
                    }
                    run_master_recovering(
                        ep,
                        &settings,
                        examples,
                        partition.as_ref(),
                        cfg.seed,
                        *max_rank_losses,
                    )
                },
                |ep| run_worker(ep, take_ctx(&contexts, ep.rank())),
            )
        }
    };
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            job.advance(JobState::Failed);
            return Err(e);
        }
    };

    job.advance(JobState::Draining);
    let master = outcome.result;
    let report = ParallelReport {
        workers: cfg.workers,
        theory: master.theory,
        epochs: master.epochs,
        set_aside: master.set_aside,
        vtime: outcome.master_vtime,
        worker_vtimes: outcome.worker_vtimes,
        total_bytes: outcome.stats.total_bytes(),
        total_messages: outcome.stats.total_messages(),
        worker_steps: outcome.worker_steps,
        dropped_sends: outcome.dropped_sends,
        wall: started.elapsed(),
        traces: master.traces,
        stalled: master.stalled,
        rank_losses: master.rank_losses,
        recovery_bytes: outcome.stats.recovery_bytes(),
        recovery_messages: outcome.stats.recovery_messages(),
        constraint_bytes: outcome.stats.constraint_bytes(),
        constraint_messages: outcome.stats.constraint_messages(),
    };
    warn_rank_losses(&report.rank_losses, report.vtime);
    job.advance(JobState::Done);
    Ok(report)
}

/// [`crate::baselines::run_coverage_parallel_opts`]'s engine room: one
/// baseline learning job on a fresh ephemeral mesh, legacy framing.
pub(crate) fn one_shot_coverage(
    engine: &IlpEngine,
    examples: &Examples,
    workers: usize,
    granularity: EvalGranularity,
    model: CostModel,
    seed: u64,
    ship: bool,
) -> Result<BaselineReport, ClusterError> {
    let started = Instant::now();
    let mut job = Lifecycle::new(EPHEMERAL_JOB);
    job.advance(JobState::Dispatching);
    let (subsets, partition) = partition_examples(examples, workers, seed);
    let threads_per_rank = threads_per_worker(engine.settings.eval_threads, workers);
    let contexts: Vec<Mutex<Option<(IlpEngine, Examples)>>> = subsets
        .into_iter()
        .map(|local| {
            let mut worker_engine = if ship {
                engine.with_empty_kb()
            } else {
                engine.clone()
            };
            worker_engine.settings.eval_threads = threads_per_rank;
            Mutex::new(Some((worker_engine, local)))
        })
        .collect();

    job.advance(JobState::Running);
    let run = run_cluster(
        workers,
        model,
        |ep| {
            if ship {
                ship_kb(ep, &engine.kb);
            }
            baseline_master(ep, engine, examples, &partition, granularity)
        },
        |ep| {
            let (eng, local) = contexts[ep.rank() - 1]
                .lock()
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {}: worker-context lock poisoned by an earlier panic",
                        ep.rank()
                    )
                })
                .take()
                .expect("taken once");
            run_baseline_worker(ep, eng, local);
        },
    );
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            job.advance(JobState::Failed);
            return Err(e);
        }
    };

    job.advance(JobState::Draining);
    let (theory, epochs, set_aside) = outcome.result;
    let report = BaselineReport {
        theory,
        epochs,
        set_aside,
        vtime: outcome.master_vtime,
        total_bytes: outcome.stats.total_bytes(),
        total_messages: outcome.stats.total_messages(),
        dropped_sends: outcome.dropped_sends,
        wall: started.elapsed(),
    };
    job.advance(JobState::Done);
    Ok(report)
}

/// [`crate::remote::run_parallel_tcp`]'s engine room: one learning job on
/// a fresh mesh of worker OS processes, legacy bootstrap framing.
pub(crate) fn one_shot_parallel_tcp(
    engine: &IlpEngine,
    examples: &Examples,
    cfg: &ParallelConfig,
    tcp: &TcpConfig,
) -> Result<ParallelReport, ClusterError> {
    if cfg.strategy != Strategy::DataPipeline {
        return crate::strategy::one_shot_strategy_tcp(engine, examples, cfg, tcp);
    }
    let started = Instant::now();
    let mut job = Lifecycle::new(EPHEMERAL_JOB);
    job.advance(JobState::Dispatching);
    let bin = tcp.resolve_worker_bin()?;
    let (subsets, partition) = if cfg.repartition {
        (vec![Examples::default(); cfg.workers], None)
    } else {
        let (subsets, part) = partition_examples(examples, cfg.workers, cfg.seed);
        (subsets, Some(part))
    };
    let mut worker_settings = engine.settings.clone();
    worker_settings.eval_threads = threads_per_worker(engine.settings.eval_threads, cfg.workers);
    let config = WorkerConfig {
        role: WorkerRole::Pipeline {
            width: cfg.width,
            repartition: cfg.repartition,
        },
        modes: engine.modes.clone(),
        settings: worker_settings,
        strategy: Strategy::DataPipeline,
        strategy_seed: cfg.seed,
    };
    let settings = engine.settings.clone();
    let total_pos = examples.num_pos();

    job.advance(JobState::Running);
    let run = run_cluster_tcp(
        cfg.workers,
        cfg.model,
        tcp.timeout,
        |rank, addr| spawn_worker(&bin, rank, addr, tcp),
        |ep| {
            bootstrap_workers(ep, engine, &config, &subsets);
            match &cfg.recovery {
                RecoveryPolicy::Abort => {
                    if cfg.repartition {
                        run_master_repartition(ep, &settings, examples, cfg.seed)
                    } else {
                        run_master(ep, &settings, total_pos)
                    }
                }
                RecoveryPolicy::Repartition { max_rank_losses } => run_master_recovering(
                    ep,
                    &settings,
                    examples,
                    partition.as_ref(),
                    cfg.seed,
                    *max_rank_losses,
                ),
            }
        },
    );
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            job.advance(JobState::Failed);
            return Err(e);
        }
    };

    job.advance(JobState::Draining);
    let master = outcome.result;
    let report = ParallelReport {
        workers: cfg.workers,
        theory: master.theory,
        epochs: master.epochs,
        set_aside: master.set_aside,
        vtime: outcome.master_vtime,
        worker_vtimes: outcome.worker_vtimes,
        total_bytes: outcome.stats.total_bytes(),
        total_messages: outcome.stats.total_messages(),
        worker_steps: outcome.worker_steps,
        dropped_sends: outcome.dropped_sends,
        wall: started.elapsed(),
        traces: master.traces,
        stalled: master.stalled,
        rank_losses: master.rank_losses,
        recovery_bytes: outcome.stats.recovery_bytes(),
        recovery_messages: outcome.stats.recovery_messages(),
        constraint_bytes: outcome.stats.constraint_bytes(),
        constraint_messages: outcome.stats.constraint_messages(),
    };
    warn_rank_losses(&report.rank_losses, report.vtime);
    job.advance(JobState::Done);
    Ok(report)
}

/// [`crate::remote::run_coverage_parallel_tcp`]'s engine room.
pub(crate) fn one_shot_coverage_tcp(
    engine: &IlpEngine,
    examples: &Examples,
    workers: usize,
    granularity: EvalGranularity,
    model: CostModel,
    seed: u64,
    tcp: &TcpConfig,
) -> Result<BaselineReport, ClusterError> {
    let started = Instant::now();
    let mut job = Lifecycle::new(EPHEMERAL_JOB);
    job.advance(JobState::Dispatching);
    let bin = tcp.resolve_worker_bin()?;
    let (subsets, partition) = partition_examples(examples, workers, seed);
    let mut worker_settings = engine.settings.clone();
    worker_settings.eval_threads = threads_per_worker(engine.settings.eval_threads, workers);

    job.advance(JobState::Running);
    let run = run_cluster_tcp(
        workers,
        model,
        tcp.timeout,
        |rank, addr| spawn_worker(&bin, rank, addr, tcp),
        |ep| {
            bootstrap_workers(
                ep,
                engine,
                &WorkerConfig {
                    role: WorkerRole::Coverage,
                    modes: engine.modes.clone(),
                    settings: worker_settings.clone(),
                    strategy: Strategy::DataPipeline,
                    strategy_seed: seed,
                },
                &subsets,
            );
            baseline_master(ep, engine, examples, &partition, granularity)
        },
    );
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            job.advance(JobState::Failed);
            return Err(e);
        }
    };

    job.advance(JobState::Draining);
    let (theory, epochs, set_aside) = outcome.result;
    let report = BaselineReport {
        theory,
        epochs,
        set_aside,
        vtime: outcome.master_vtime,
        total_bytes: outcome.stats.total_bytes(),
        total_messages: outcome.stats.total_messages(),
        dropped_sends: outcome.dropped_sends,
        wall: started.elapsed(),
    };
    job.advance(JobState::Done);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_ilp::modes::ModeSet;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    /// Multiples of 6 among 1..=n, with even/div3 background.
    fn problem(n: i64) -> (IlpEngine, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=n {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(t.intern("div3"), vec![Term::Int(i)]));
            }
        }
        let modes =
            ModeSet::parse(&t, "div6(+num)", &[(1, "even(+num)"), (1, "div3(+num)")]).unwrap();
        let tgt = t.intern("div6");
        let ex = Examples::new(
            (1..=n)
                .filter(|i| i % 6 == 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            (1..=n)
                .filter(|i| i % 6 != 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        let engine = IlpEngine::new(
            kb,
            modes,
            Settings {
                min_pos: 1,
                noise: 0,
                ..Settings::default()
            },
        );
        (engine, ex)
    }

    fn free_service(engine: &IlpEngine, workers: usize) -> Service {
        Service::new(
            engine,
            ServiceConfig::new(workers).with_model(CostModel::free()),
        )
    }

    #[test]
    fn coverage_job_counts_match_direct_evaluation() {
        let (engine, ex) = problem(60);
        let rep = crate::driver::run_parallel(
            &engine,
            &ex,
            &crate::driver::ParallelConfig::new(2, p2mdie_ilp::settings::Width::Unlimited, 42),
        )
        .unwrap();
        let rules = rep.clauses();
        assert!(!rules.is_empty());

        let service = free_service(&engine, 2);
        let outcome = service
            .submit(JobSpec::coverage(ex.clone(), rules.clone()))
            .unwrap()
            .wait();
        assert_eq!(outcome.state, JobState::Done);
        for (rule, counts) in rules.iter().zip(outcome.coverage()) {
            let cov = engine.evaluate(rule, &ex, None, None);
            assert_eq!(
                (cov.pos_count(), cov.neg_count()),
                *counts,
                "partitioned counts must sum to the global ones"
            );
        }
        assert!(outcome.accounting.bytes > 0);
        assert!(outcome.accounting.messages > 0);
        assert_eq!(outcome.accounting.worker_steps.len(), 2);
        let report = service.shutdown().unwrap();
        assert_eq!(report.jobs_run, 1);
        assert!(
            report.total_bytes > outcome.accounting.bytes,
            "the KB ship is mesh overhead, not job cost"
        );
    }

    #[test]
    fn learn_job_matches_one_shot_run() {
        let (engine, ex) = problem(90);
        let one_shot = crate::driver::run_parallel(
            &engine,
            &ex,
            &crate::driver::ParallelConfig::new(2, p2mdie_ilp::settings::Width::Unlimited, 7),
        )
        .unwrap();

        let service = free_service(&engine, 2);
        let outcome = service
            .submit(JobSpec::learn(ex.clone()).with_seed(7))
            .unwrap()
            .wait();
        assert_eq!(outcome.state, JobState::Done);
        let learned = outcome.learned();
        assert_eq!(
            learned.theory, one_shot.theory,
            "a resident learn job must induce the one-shot theory"
        );
        assert_eq!(learned.epochs, one_shot.epochs);
        assert_eq!(
            outcome.accounting.worker_steps, one_shot.worker_steps,
            "per-job worker steps must match the fresh-mesh run"
        );
        service.shutdown().unwrap();
    }

    #[test]
    fn rule_search_job_returns_a_scored_bag() {
        let (engine, ex) = problem(60);
        let service = free_service(&engine, 2);
        let outcome = service
            .submit(JobSpec::rule_search(ex.clone()).with_seed(3))
            .unwrap()
            .wait();
        assert_eq!(outcome.state, JobState::Done);
        let Some(JobOutput::Rules(rules)) = &outcome.output else {
            panic!("expected a rule bag, got {:?}", outcome.output);
        };
        assert!(!rules.is_empty());
        // Best-first: the top rule covers every positive, no negative.
        let (best, pos, neg) = &rules[0];
        let cov = engine.evaluate(best, &ex, None, None);
        assert_eq!((cov.pos_count(), cov.neg_count()), (*pos, *neg));
        assert_eq!(*neg, 0);
        service.shutdown().unwrap();
    }

    #[test]
    fn fairness_runs_a_coverage_query_before_queued_learns() {
        let (engine, ex) = problem(90);
        let rule = {
            let rep = crate::driver::run_parallel(
                &engine,
                &ex,
                &crate::driver::ParallelConfig::new(2, p2mdie_ilp::settings::Width::Unlimited, 42),
            )
            .unwrap();
            rep.clauses()[0].clone()
        };
        let service = free_service(&engine, 2);
        // Three learning runs queued first, then a coverage query. With one
        // FIFO it would wait behind all three; class round-robin runs it
        // second.
        let learns: Vec<JobHandle> = (0..3)
            .map(|i| {
                service
                    .submit(JobSpec::learn(ex.clone()).with_seed(i))
                    .unwrap()
            })
            .collect();
        let query = service
            .submit(JobSpec::coverage(ex.clone(), vec![rule]))
            .unwrap();
        let query_id = query.id();
        let outcome = query.wait();
        assert_eq!(outcome.state, JobState::Done);
        // All jobs still finish.
        for handle in learns {
            assert_eq!(handle.wait().state, JobState::Done);
        }
        let report = service.shutdown().unwrap();
        assert_eq!(report.jobs_run, 4);
        assert_eq!(query_id, JobId(4));
    }

    #[test]
    fn backpressure_rejects_when_the_queue_is_full() {
        let (engine, ex) = problem(90);
        let service = Service::new(
            &engine,
            ServiceConfig::new(1)
                .with_model(CostModel::free())
                .with_queue_cap(1),
        );
        // Saturate: the scheduler may have dequeued some, so keep pushing
        // until a submission bounces.
        let mut handles = Vec::new();
        let mut saw_backpressure = false;
        for i in 0..64 {
            match service.submit(JobSpec::learn(ex.clone()).with_seed(i)) {
                Ok(h) => handles.push(h),
                Err(SubmitError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        assert!(
            saw_backpressure,
            "a capacity-1 queue must bounce a burst of submissions"
        );
        for h in handles {
            assert_eq!(h.wait().state, JobState::Done);
        }
        service.shutdown().unwrap();
    }

    #[test]
    fn cancelled_job_fails_cleanly_and_skips_dispatch() {
        let (engine, ex) = problem(90);
        let service = free_service(&engine, 2);
        // Park a learn in front so the victim is still queued when the
        // cancellation lands.
        let first = service
            .submit(JobSpec::learn(ex.clone()).with_seed(1))
            .unwrap();
        let victim = service
            .submit(JobSpec::learn(ex.clone()).with_seed(2))
            .unwrap();
        victim.cancel();
        let outcome = victim.wait();
        assert_eq!(outcome.state, JobState::Failed);
        assert!(outcome.error.as_deref().unwrap().contains("cancelled"));
        assert!(outcome.output.is_none());
        assert_eq!(first.wait().state, JobState::Done);
        let report = service.shutdown().unwrap();
        assert_eq!(report.jobs_run, 1, "the cancelled job must not dispatch");
    }

    #[test]
    fn submit_after_shutdown_reports_service_down() {
        let (engine, _ex) = problem(30);
        let service = free_service(&engine, 1);
        let tx = service.tx.clone();
        service.shutdown().unwrap();
        // The original channel is gone; a clone of the sender sees the
        // disconnect the way a late `submit` would.
        assert!(tx.send(Request::Shutdown).is_err());
    }

    /// A master that vanishes while the worker sits idle between jobs must
    /// surface as [`WorkerExit::IdleDisconnect`] — the signal the
    /// `p2mdie-worker` binary maps to its distinct exit code — not as a
    /// panic or a hang. Driven on a raw two-rank mesh with the runtime's
    /// own death-notification mechanism (`DownHandle`, what the supervisor
    /// injects when a rank's thread dies, and the in-process analogue of a
    /// broken TCP stream), because `run_cluster` keeps the master endpoint
    /// alive until the workers join and a full mesh's channels never close
    /// on their own.
    #[test]
    fn resident_worker_reports_idle_disconnect_when_the_master_vanishes() {
        use p2mdie_cluster::{MeshTransport, TrafficStats};
        let (engine, _ex) = problem(30);
        let mut meshes = MeshTransport::mesh(2);
        let worker_t = meshes.pop().expect("rank 1");
        let master_t = meshes.pop().expect("rank 0");
        let master_down = master_t.down_handle(1);
        let stats = TrafficStats::new(2);
        let mut master_ep = Endpoint::from_parts(0, 2, master_t, CostModel::free(), stats.clone());
        let kb = engine.kb.clone();
        let handle = std::thread::spawn(move || {
            let mut ep = Endpoint::from_parts(1, 2, worker_t, CostModel::free(), stats);
            let mut base = kb;
            run_resident_worker(&mut ep, &mut base)
        });
        // An advisory frame the idle loop ignores, then the master is gone:
        // its endpoint drops and the supervisor notifies the worker.
        master_ep.broadcast(&Msg::CancelJob { id: 1 });
        drop(master_ep);
        assert!(master_down.notify(0), "worker must still be receiving");
        assert_eq!(
            handle.join().expect("worker thread"),
            WorkerExit::IdleDisconnect,
            "an idle worker must classify a vanished master as IdleDisconnect"
        );
    }

    #[test]
    fn per_job_accounting_splits_the_mesh_totals() {
        let (engine, ex) = problem(90);
        // The free cost model would leave every clock at zero; price the
        // mesh so the per-job vtime deltas are observable.
        let service = Service::new(&engine, ServiceConfig::new(2));
        let a = service
            .submit(JobSpec::learn(ex.clone()).with_seed(1))
            .unwrap()
            .wait();
        let b = service
            .submit(JobSpec::learn(ex.clone()).with_seed(2))
            .unwrap()
            .wait();
        let report = service.shutdown().unwrap();
        let job_bytes = a.accounting.bytes + b.accounting.bytes;
        assert!(job_bytes > 0);
        assert!(
            report.total_bytes > job_bytes,
            "mesh totals also carry the KB ship and shutdown framing"
        );
        assert!(a.accounting.vtime > 0.0 && b.accounting.vtime > 0.0);
        assert!(
            report.master_vtime >= a.accounting.vtime + b.accounting.vtime,
            "per-job clock deltas cannot exceed the mesh clock"
        );
    }
}
