//! First-class jobs: *what* runs on the cluster, separated from *where*
//! it runs.
//!
//! Before this layer, every entry point conflated three things: building a
//! mesh, describing the work, and running it. A [`JobSpec`] now describes
//! the work alone — a coverage query, a one-epoch rule search, or a full
//! learning run, each with its own examples, settings, seed, and pipeline
//! width — and the [`crate::scheduler`] decides where it executes: on a
//! fresh ephemeral mesh (the one-shot entry points) or multiplexed over a
//! resident [`Service`](crate::scheduler::Service).
//!
//! # Lifecycle
//!
//! Every job walks the same state machine, whether ephemeral or resident:
//!
//! ```text
//!             submit            per-rank SubmitJob        all JobAccepted
//!   Queued ────────► Dispatching ──────────────► Running ───────────────┐
//!      │                  │                         │                   │
//!      │                  │                         │ job protocol ran  │
//!      │                  │                         ▼                   │
//!      │                  │                     Draining ◄──────────────┘
//!      │                  │                         │  all JobResult in
//!      │                  │                         ▼
//!      │                  └──────────► Failed     Done
//!      └─ cancel ─────────────────────►  ▲
//!                                        └─ any non-terminal state may fail
//! ```
//!
//! Transitions are checked ([`JobState::may_transition_to`]); an illegal
//! hop is a scheduler bug and panics rather than mis-reporting a job.
//! `Done` and `Failed` are terminal.

use crate::baselines::EvalGranularity;
use crate::master::MasterOutcome;
use crate::report::JobAccounting;
use crate::strategy::Strategy;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::settings::{Settings, Width};
use p2mdie_logic::clause::Clause;

/// Identifier of one job, unique within its submitting service (ids are
/// assigned in submission order, starting at 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// What kind of work a job is.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// A coverage query: evaluate the given rules against the job's
    /// examples in one distributed round and return the global
    /// `(pos, neg)` counts, in rule order.
    Coverage {
        /// The rules to score.
        rules: Vec<Clause>,
    },
    /// One pipelined rule-search epoch (Fig. 5 steps 6–11 as a job): run
    /// `p` pipelines over the partitioned examples, pool the surviving
    /// rules, score them globally, and return the scored bag —
    /// best-first — without consuming it.
    RuleSearch,
    /// A full p²-mdie learning run ([`crate::master::run_master`]).
    Learn,
    /// A full coverage-parallel baseline learning run
    /// ([`crate::baselines`], the §6 related-work algorithm).
    BaselineLearn {
        /// Clauses shipped per evaluation round.
        granularity: EvalGranularity,
    },
}

impl JobKind {
    /// The scheduling class this kind belongs to (see
    /// [`crate::scheduler`]'s fairness rules): quick queries and full runs
    /// queue separately so a stream of learning runs cannot starve a
    /// coverage query.
    pub(crate) fn class(&self) -> usize {
        match self {
            JobKind::Coverage { .. } => 0,
            JobKind::RuleSearch => 1,
            JobKind::Learn | JobKind::BaselineLearn { .. } => 2,
        }
    }

    /// Short human-readable tag for logs and errors.
    pub fn tag(&self) -> &'static str {
        match self {
            JobKind::Coverage { .. } => "coverage",
            JobKind::RuleSearch => "rule-search",
            JobKind::Learn => "learn",
            JobKind::BaselineLearn { .. } => "baseline-learn",
        }
    }
}

/// Number of distinct scheduling classes (see [`JobKind::class`]).
pub(crate) const JOB_CLASSES: usize = 3;

/// Metric-label names of the scheduling classes, indexed by
/// [`JobKind::class`].
pub(crate) const CLASS_NAMES: [&str; JOB_CLASSES] = ["coverage", "rule-search", "learn"];

/// A complete description of one unit of cluster work.
///
/// Every job carries its *own* examples, settings, partition seed, and
/// width — two jobs multiplexed over the same mesh may differ in all of
/// them. `settings: None` inherits the service engine's settings.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// The examples this job runs over (partitioned over the workers with
    /// `seed` at dispatch time).
    pub examples: Examples,
    /// Pipeline width `W` for rule-search and learning jobs.
    pub width: Width,
    /// Seed for the example partitioning.
    pub seed: u64,
    /// Per-epoch repartitioning (§4.1 variant) for [`JobKind::Learn`].
    pub repartition: bool,
    /// Per-job settings override; `None` uses the service engine's.
    pub settings: Option<Settings>,
    /// Parallelization strategy for [`JobKind::Learn`] jobs (see
    /// [`crate::strategy`]). Ignored by every other kind: a `RuleSearch`
    /// job's global scoring sums per-rank counts, which the non-default
    /// strategies' full example replication would multiply by `p`, and
    /// coverage/baseline jobs have no rule search to re-parallelize. One
    /// resident mesh freely multiplexes jobs of different strategies.
    pub strategy: Strategy,
}

impl JobSpec {
    fn new(kind: JobKind, examples: Examples) -> Self {
        JobSpec {
            kind,
            examples,
            width: Width::Unlimited,
            seed: 42,
            repartition: false,
            settings: None,
            strategy: Strategy::default(),
        }
    }

    /// A coverage query over `rules`.
    pub fn coverage(examples: Examples, rules: Vec<Clause>) -> Self {
        JobSpec::new(JobKind::Coverage { rules }, examples)
    }

    /// A one-epoch pipelined rule search.
    pub fn rule_search(examples: Examples) -> Self {
        JobSpec::new(JobKind::RuleSearch, examples)
    }

    /// A full p²-mdie learning run.
    pub fn learn(examples: Examples) -> Self {
        JobSpec::new(JobKind::Learn, examples)
    }

    /// A full coverage-parallel baseline run.
    pub fn baseline(examples: Examples, granularity: EvalGranularity) -> Self {
        JobSpec::new(JobKind::BaselineLearn { granularity }, examples)
    }

    /// Sets the partition seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the pipeline width.
    pub fn with_width(mut self, width: Width) -> Self {
        self.width = width;
        self
    }

    /// Overrides the service engine's settings for this job.
    pub fn with_settings(mut self, settings: Settings) -> Self {
        self.settings = Some(settings);
        self
    }

    /// Enables per-epoch repartitioning (learning jobs only).
    pub fn with_repartition(mut self) -> Self {
        self.repartition = true;
        self
    }

    /// Selects the parallelization strategy (learning jobs only; see the
    /// `strategy` field for why other kinds ignore it).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Where a job is in its lifecycle (diagram in the [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted into the service queue; not yet on the mesh.
    Queued,
    /// Being shipped to the workers (per-rank
    /// [`Msg::SubmitJob`](crate::protocol::Msg::SubmitJob) frames out,
    /// acceptances pending).
    Dispatching,
    /// All workers accepted; the job's protocol is running.
    Running,
    /// The protocol finished; per-worker results are being collected.
    Draining,
    /// Finished with a result. Terminal.
    Done,
    /// Cancelled, rejected, or aborted by an error. Terminal.
    Failed,
}

impl JobState {
    /// Whether the lifecycle permits moving from `self` to `next`.
    /// Forward progress only; any non-terminal state may move to
    /// [`JobState::Failed`].
    pub fn may_transition_to(self, next: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, next),
            (Queued, Dispatching)
                | (Dispatching, Running)
                | (Running, Draining)
                | (Draining, Done)
                | (Queued | Dispatching | Running | Draining, Failed)
        )
    }

    /// True for `Done` and `Failed`.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }

    /// Short lowercase tag for trace events and logs.
    pub fn tag(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Dispatching => "dispatching",
            JobState::Running => "running",
            JobState::Draining => "draining",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// The scheduler's in-flight view of one job: its id plus a
/// transition-checked [`JobState`]. Shared by the resident scheduler and
/// the ephemeral one-shot dispatch so both walk the identical lifecycle.
#[derive(Debug)]
pub(crate) struct Lifecycle {
    pub id: JobId,
    pub state: JobState,
}

impl Lifecycle {
    /// A freshly queued job.
    pub fn new(id: JobId) -> Self {
        Lifecycle {
            id,
            state: JobState::Queued,
        }
    }

    /// Moves to `next`, panicking on an illegal transition (a scheduler
    /// bug, not a user error).
    pub fn advance(&mut self, next: JobState) {
        assert!(
            self.state.may_transition_to(next),
            "{}: illegal lifecycle transition {:?} -> {next:?}",
            self.id,
            self.state
        );
        self.state = next;
    }
}

/// What a finished job produced, by kind.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// Global `(pos, neg)` counts, in the order of the submitted rules.
    Coverage(Vec<(u32, u32)>),
    /// The scored bag of one rule-search epoch, best rule first:
    /// `(clause, global_pos, global_neg)`.
    Rules(Vec<(Clause, u32, u32)>),
    /// The full outcome of a learning run.
    Learned(MasterOutcome),
    /// The outcome of a baseline learning run.
    BaselineLearned {
        /// The induced theory.
        theory: Vec<Clause>,
        /// Covering iterations executed.
        epochs: u32,
        /// Positives set aside without a covering rule.
        set_aside: u32,
    },
}

/// The terminal record of one job: its final state, its output (present
/// exactly when the state is [`JobState::Done`]), and what it cost.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's id.
    pub id: JobId,
    /// Terminal state: `Done` or `Failed`.
    pub state: JobState,
    /// The result (`Some` iff `state == Done`).
    pub output: Option<JobOutput>,
    /// Failure description (`Some` iff `state == Failed`).
    pub error: Option<String>,
    /// Per-job resource accounting.
    pub accounting: JobAccounting,
}

impl JobOutcome {
    /// The coverage counts, panicking if the job was not a completed
    /// coverage query.
    pub fn coverage(&self) -> &[(u32, u32)] {
        match &self.output {
            Some(JobOutput::Coverage(counts)) => counts,
            other => panic!("{}: expected a coverage output, got {other:?}", self.id),
        }
    }

    /// The learned outcome, panicking if the job was not a completed
    /// learning run.
    pub fn learned(&self) -> &MasterOutcome {
        match &self.output {
            Some(JobOutput::Learned(out)) => out,
            other => panic!("{}: expected a learned output, got {other:?}", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path() {
        let mut job = Lifecycle::new(JobId(7));
        for next in [
            JobState::Dispatching,
            JobState::Running,
            JobState::Draining,
            JobState::Done,
        ] {
            job.advance(next);
        }
        assert!(job.state.is_terminal());
    }

    #[test]
    fn any_non_terminal_state_may_fail() {
        for reach in 0..4usize {
            let mut job = Lifecycle::new(JobId(1));
            let path = [JobState::Dispatching, JobState::Running, JobState::Draining];
            for next in path.iter().take(reach) {
                job.advance(*next);
            }
            job.advance(JobState::Failed);
            assert_eq!(job.state, JobState::Failed);
        }
    }

    #[test]
    #[should_panic(expected = "illegal lifecycle transition")]
    fn cannot_skip_dispatch() {
        Lifecycle::new(JobId(1)).advance(JobState::Running);
    }

    #[test]
    #[should_panic(expected = "illegal lifecycle transition")]
    fn terminal_states_are_final() {
        let mut job = Lifecycle::new(JobId(1));
        job.advance(JobState::Failed);
        job.advance(JobState::Dispatching);
    }

    #[test]
    fn classes_partition_the_kinds() {
        let ex = Examples::default();
        assert_eq!(JobSpec::coverage(ex.clone(), vec![]).kind.class(), 0);
        assert_eq!(JobSpec::rule_search(ex.clone()).kind.class(), 1);
        assert_eq!(JobSpec::learn(ex.clone()).kind.class(), 2);
        assert_eq!(
            JobSpec::baseline(ex, EvalGranularity::PerLevel)
                .kind
                .class(),
            2
        );
        // Every class index above must be a valid queue index.
        for spec in [
            JobSpec::coverage(Examples::default(), vec![]),
            JobSpec::rule_search(Examples::default()),
            JobSpec::learn(Examples::default()),
        ] {
            assert!(spec.kind.class() < JOB_CLASSES);
        }
    }
}
