//! The master rank (paper Figure 5).
//!
//! Epochs repeat until every positive example is covered: start `p`
//! pipelines, gather each pipeline's surviving rules into the bag, have all
//! workers score the bag globally, then consume the bag — pick the globally
//! best rule, broadcast `mark_covered`, re-evaluate, drop what is no longer
//! good — accepting *several* rules per epoch (the key difference from the
//! sequential algorithm, and the source of the epoch reduction in Table 5).
//!
//! One deliberate deviation from the letter of Figure 5 is documented in
//! DESIGN.md §6: the bag is filtered with `notGood` *before* every pick
//! (including the first), so a globally-bad rule is never accepted; Figure 5
//! only filters after the first acceptance. This matches the figure's
//! stated intent of "emulating MDIE as closely as possible".

use crate::bag::RuleBag;
use crate::protocol::{Msg, StageTrace};
use p2mdie_cluster::comm::Endpoint;
use p2mdie_cluster::transport::Transport;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::Clause;
use p2mdie_logic::kb::KnowledgeBase;

/// A rule accepted into the global theory.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AcceptedRule {
    /// The clause.
    pub clause: Clause,
    /// Global positive cover at acceptance time (over live examples).
    pub pos: u32,
    /// Global negative cover at acceptance time.
    pub neg: u32,
    /// Epoch in which it was accepted (1-based).
    pub epoch: u32,
    /// Pipeline origin the rule came from (worker rank).
    pub origin: u8,
}

/// Trace of one epoch's `p` pipelines (raw material for Figures 3–4).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpochTrace {
    /// Epoch number (1-based).
    pub epoch: u32,
    /// Stage traces, one vector per pipeline origin (index 0 = origin 1).
    pub pipelines: Vec<Vec<StageTrace>>,
    /// Rules gathered into the bag this epoch (after dedup).
    pub bag_size: u32,
    /// Rules accepted this epoch.
    pub accepted: u32,
}

/// What the master reports when the run finishes.
#[derive(Clone, Debug, Default)]
pub struct MasterOutcome {
    /// The induced theory in acceptance order.
    pub theory: Vec<AcceptedRule>,
    /// Number of epochs executed.
    pub epochs: u32,
    /// Positive examples retired without a covering rule.
    pub set_aside: u32,
    /// Per-epoch pipeline traces.
    pub traces: Vec<EpochTrace>,
    /// True when the run had to bail out of an inconsistent state (no
    /// progress possible but `remaining > 0`); should never happen.
    pub stalled: bool,
}

/// Builds the compiled-KB snapshot *once* at the master and ships it to
/// every worker as a [`Msg::KbSnapshot`], before any other message.
///
/// This replaces the paper's distributed-file-system assumption (every node
/// reads and rebuilds the background theory itself) with an explicit,
/// byte-accounted transfer: the master is charged one pass over the stored
/// facts for the build, the per-link bytes land in the traffic statistics,
/// and each worker's startup cost in virtual time is the transfer alone —
/// adoption on the worker side needs no re-interning and no re-indexing
/// (see [`p2mdie_logic::snapshot`]).
pub fn ship_kb<T: Transport>(ep: &mut Endpoint<T>, kb: &KnowledgeBase) {
    ep.advance_steps(kb.num_facts() as u64);
    ep.broadcast(&Msg::KbSnapshot(Box::new(kb.to_snapshot())));
}

/// Runs the master protocol of Figure 5. `total_pos` is `|E+|` over all
/// subsets; `settings` must be the same the workers use (shared data
/// assumption).
pub fn run_master<T: Transport>(
    ep: &mut Endpoint<T>,
    settings: &Settings,
    total_pos: usize,
) -> MasterOutcome {
    let p = ep.workers();
    let mut out = MasterOutcome::default();
    let mut remaining = total_pos;

    ep.broadcast(&Msg::LoadExamples);

    while remaining > 0 {
        out.epochs += 1;
        let epoch = out.epochs;
        let mut trace = EpochTrace {
            epoch,
            pipelines: vec![Vec::new(); p],
            bag_size: 0,
            accepted: 0,
        };

        // Fig. 5 steps 6–9: start p pipelines, gather the rule sets. The
        // pipeline of origin k delivers from its last stage, worker k-1
        // (wrapping), so receiving from ranks 1..=p in order collects all
        // of them deterministically.
        for k in 1..=p {
            ep.send(k, &Msg::StartPipeline { epoch });
        }
        let mut bag = RuleBag::new();
        let mut any_seed = false;
        for k in 1..=p {
            let msg = Msg::recv(ep, k, "RulesFound");
            let Msg::RulesFound {
                origin,
                rules,
                had_seed,
                trace: ptrace,
            } = msg
            else {
                panic!("master: expected RulesFound from rank {k}, got {msg:?}");
            };
            any_seed |= had_seed;
            for (clause, _, _) in rules {
                bag.insert(clause, origin);
            }
            trace.pipelines[origin as usize - 1] = ptrace;
        }
        trace.bag_size = bag.len() as u32;

        if !any_seed {
            // No worker has a live example but `remaining > 0`: the count
            // drifted (should be impossible). Bail out rather than spin.
            out.stalled = true;
            out.traces.push(trace);
            break;
        }

        // Fig. 5 steps 10–22: consume the bag.
        let mut accepted_this_epoch = 0u32;
        if !bag.is_empty() {
            evaluate_bag(ep, p, &mut bag);
            loop {
                bag.drop_not_good(settings);
                if bag.is_empty() {
                    break;
                }
                // Bag bookkeeping is master-side compute: charge one step
                // per scanned rule.
                ep.advance_steps(bag.len() as u64);
                let best = bag.pick_best(settings.score).expect("bag non-empty");
                let (pos, neg) = (best.global_pos(), best.global_neg());
                ep.broadcast(&Msg::MarkCovered {
                    rule: best.clause.clone(),
                });
                remaining = remaining.saturating_sub(pos as usize);
                out.theory.push(AcceptedRule {
                    clause: best.clause,
                    pos,
                    neg,
                    epoch,
                    origin: best.origin,
                });
                accepted_this_epoch += 1;
                if bag.is_empty() {
                    break;
                }
                evaluate_bag(ep, p, &mut bag);
            }
        }
        trace.accepted = accepted_this_epoch;
        out.traces.push(trace);

        // Progress guarantee: an epoch that accepted nothing retires the
        // seed examples its pipelines started from (April sets aside
        // examples no good rule explains).
        if accepted_this_epoch == 0 && remaining > 0 {
            ep.broadcast(&Msg::RetireSeed);
            let mut retired = 0u32;
            for k in 1..=p {
                let msg = Msg::recv(ep, k, "SeedRetired");
                let Msg::SeedRetired { removed } = msg else {
                    panic!("master: expected SeedRetired from rank {k}, got {msg:?}");
                };
                retired += removed;
            }
            if retired == 0 {
                out.stalled = true;
                break;
            }
            remaining = remaining.saturating_sub(retired as usize);
            out.set_aside += retired;
        }
    }

    ep.broadcast(&Msg::Stop);
    out
}

/// The §4.1 repartitioning variant: identical to [`run_master`] except that
/// the live examples are randomly re-dealt to the workers *before every
/// epoch* (shipping the example literals in full — the communication cost
/// the paper cites as the reason not to do this), and every `MarkCovered`
/// is answered with covered indices so the master can track the global
/// live set the next deal draws from.
pub fn run_master_repartition<T: Transport>(
    ep: &mut Endpoint<T>,
    settings: &Settings,
    examples: &p2mdie_ilp::examples::Examples,
    seed: u64,
) -> MasterOutcome {
    use p2mdie_ilp::bitset::Bitset;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let p = ep.workers();
    let mut out = MasterOutcome::default();
    let mut live = Bitset::full(examples.num_pos());

    ep.broadcast(&Msg::LoadExamples);

    while live.any() {
        out.epochs += 1;
        let epoch = out.epochs;
        let mut trace = EpochTrace {
            epoch,
            pipelines: vec![Vec::new(); p],
            bag_size: 0,
            accepted: 0,
        };

        // Re-deal the live positives (and all negatives) evenly.
        let mut rng = StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
        let mut live_idx: Vec<usize> = live.iter_ones().collect();
        live_idx.shuffle(&mut rng);
        let mut neg_idx: Vec<usize> = (0..examples.num_neg()).collect();
        neg_idx.shuffle(&mut rng);
        let mut assign: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (i, g) in live_idx.iter().enumerate() {
            assign[i % p].push(*g);
        }
        for (k, part) in assign.iter().enumerate() {
            let pos: Vec<_> = part.iter().map(|&g| examples.pos[g].clone()).collect();
            let neg: Vec<_> = neg_idx
                .iter()
                .skip(k)
                .step_by(p)
                .map(|&g| examples.neg[g].clone())
                .collect();
            ep.send(k + 1, &Msg::NewPartition { pos, neg });
        }

        // Pipelines, exactly as in the static master.
        for k in 1..=p {
            ep.send(k, &Msg::StartPipeline { epoch });
        }
        let mut bag = RuleBag::new();
        for k in 1..=p {
            let msg = Msg::recv(ep, k, "RulesFound");
            let Msg::RulesFound {
                origin,
                rules,
                had_seed: _,
                trace: ptrace,
            } = msg
            else {
                panic!("master: expected RulesFound from rank {k}, got {msg:?}");
            };
            for (clause, _, _) in rules {
                bag.insert(clause, origin);
            }
            trace.pipelines[origin as usize - 1] = ptrace;
        }
        trace.bag_size = bag.len() as u32;

        // Bag consumption with master-side live tracking.
        let mut accepted_this_epoch = 0u32;
        if !bag.is_empty() {
            evaluate_bag(ep, p, &mut bag);
            loop {
                bag.drop_not_good(settings);
                if bag.is_empty() {
                    break;
                }
                ep.advance_steps(bag.len() as u64);
                let best = bag.pick_best(settings.score).expect("bag non-empty");
                let (pos, neg) = (best.global_pos(), best.global_neg());
                ep.broadcast(&Msg::MarkCovered {
                    rule: best.clause.clone(),
                });
                for k in 1..=p {
                    let msg = Msg::recv(ep, k, "CoveredIdx");
                    let Msg::CoveredIdx { pos: covered } = msg else {
                        panic!("master: expected CoveredIdx from rank {k}, got {msg:?}");
                    };
                    for local in covered {
                        live.clear(assign[k - 1][local as usize]);
                    }
                }
                out.theory.push(AcceptedRule {
                    clause: best.clause,
                    pos,
                    neg,
                    epoch,
                    origin: best.origin,
                });
                accepted_this_epoch += 1;
                if bag.is_empty() {
                    break;
                }
                evaluate_bag(ep, p, &mut bag);
            }
        }
        trace.accepted = accepted_this_epoch;
        out.traces.push(trace);

        // Progress guarantee, master-side: a fresh partition means each
        // worker's epoch seed was its first assigned example.
        if accepted_this_epoch == 0 {
            let mut retired = 0u32;
            for part in &assign {
                if let Some(&g) = part.first() {
                    if live.get(g) {
                        live.clear(g);
                        retired += 1;
                    }
                }
            }
            if retired == 0 {
                out.stalled = true;
                break;
            }
            out.set_aside += retired;
        }
    }

    ep.broadcast(&Msg::Stop);
    out
}

/// One global evaluation round: broadcast the bag, collect per-subset
/// counts from every worker (Fig. 5 steps 10–11 / 18–19).
fn evaluate_bag<T: Transport>(ep: &mut Endpoint<T>, p: usize, bag: &mut RuleBag) {
    ep.broadcast(&Msg::Evaluate {
        rules: bag.clauses(),
    });
    let mut results = Vec::with_capacity(p);
    for k in 1..=p {
        let msg = Msg::recv(ep, k, "EvalResult");
        let Msg::EvalResult { counts } = msg else {
            panic!("master: expected EvalResult from rank {k}, got {msg:?}");
        };
        results.push(counts);
    }
    bag.set_results(&results);
}
