//! The master rank (paper Figure 5).
//!
//! Epochs repeat until every positive example is covered: start `p`
//! pipelines, gather each pipeline's surviving rules into the bag, have all
//! workers score the bag globally, then consume the bag — pick the globally
//! best rule, broadcast `mark_covered`, re-evaluate, drop what is no longer
//! good — accepting *several* rules per epoch (the key difference from the
//! sequential algorithm, and the source of the epoch reduction in Table 5).
//!
//! One deliberate deviation from the letter of Figure 5 is documented in
//! DESIGN.md §6: the bag is filtered with `notGood` *before* every pick
//! (including the first), so a globally-bad rule is never accepted; Figure 5
//! only filters after the first acceptance. This matches the figure's
//! stated intent of "emulating MDIE as closely as possible".
//!
//! # Worker-death recovery ([`run_master_recovering`])
//!
//! The recovering master treats a dead rank as a *membership event*, not an
//! error. Every receive watches all links
//! ([`Endpoint::recv_from_watching`]); the moment one dies the master runs
//! the recovery protocol instead of unwinding:
//!
//! 1. **Abort** — send [`Msg::AbortEpoch`] to every survivor, then drain
//!    each survivor's stream up to its [`Msg::AbortAck`], *processing* any
//!    in-flight `CoveredIdx` replies (coverage already applied on the
//!    worker side must not be lost) and discarding stale pipeline results.
//! 2. **Redistribute** — deal the dead rank's still-live positives and its
//!    negatives over the survivors ([`Msg::AdoptExamples`]), extending the
//!    master's global-index bookkeeping in sent order (static partition
//!    mode; the repartitioning variant simply re-deals next epoch).
//! 3. **Resync** — broadcast the accepted theory ([`Msg::ReplayTheory`]);
//!    each survivor reports everything it covers among its live examples,
//!    which restores the exact global live set even if the death raced a
//!    `MarkCovered` round.
//!
//! The aborted epoch restarts over the shrunk ring. Rules accepted before
//! the abort stay accepted (per-channel FIFO order guarantees every
//! survivor processed the `MarkCovered` before the `AbortEpoch`). Recovery
//! traffic is tallied separately in the traffic statistics
//! (`TrafficStats::recovery_bytes`), so reports stay honest about what the
//! fault added. A *second* death while a recovery is quiescing exceeds the
//! protocol and surfaces as a clean rank-tagged error — never a hang or a
//! partial theory (pinned by `crates/core/tests/recovery.rs`).

use crate::bag::RuleBag;
use crate::partition::Partition;
use crate::protocol::{Msg, StageTrace};
use p2mdie_cluster::codec::from_bytes;
use p2mdie_cluster::comm::{CommError, CommFailure, Endpoint, LinkFault, RecvError};
use p2mdie_cluster::transport::Transport;
use p2mdie_ilp::settings::Settings;
use p2mdie_logic::clause::Clause;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_obs::span;

/// A rule accepted into the global theory.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AcceptedRule {
    /// The clause.
    pub clause: Clause,
    /// Global positive cover at acceptance time (over live examples).
    pub pos: u32,
    /// Global negative cover at acceptance time.
    pub neg: u32,
    /// Epoch in which it was accepted (1-based).
    pub epoch: u32,
    /// Pipeline origin the rule came from (worker rank).
    pub origin: u8,
}

/// Trace of one epoch's `p` pipelines (raw material for Figures 3–4).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpochTrace {
    /// Epoch number (1-based).
    pub epoch: u32,
    /// Stage traces, one vector per pipeline origin (index 0 = origin 1).
    pub pipelines: Vec<Vec<StageTrace>>,
    /// Rules gathered into the bag this epoch (after dedup).
    pub bag_size: u32,
    /// Rules accepted this epoch.
    pub accepted: u32,
}

/// What the master reports when the run finishes.
#[derive(Clone, Debug, Default)]
pub struct MasterOutcome {
    /// The induced theory in acceptance order.
    pub theory: Vec<AcceptedRule>,
    /// Number of epochs executed.
    pub epochs: u32,
    /// Positive examples retired without a covering rule.
    pub set_aside: u32,
    /// Per-epoch pipeline traces.
    pub traces: Vec<EpochTrace>,
    /// True when the run had to bail out of an inconsistent state (no
    /// progress possible but `remaining > 0`); should never happen.
    pub stalled: bool,
    /// Ranks that died mid-run and were recovered from, in death order
    /// (always empty outside [`run_master_recovering`]).
    pub rank_losses: Vec<u32>,
}

/// Builds the compiled-KB snapshot *once* at the master and ships it to
/// every worker as a [`Msg::KbSnapshot`], before any other message.
///
/// This replaces the paper's distributed-file-system assumption (every node
/// reads and rebuilds the background theory itself) with an explicit,
/// byte-accounted transfer: the master is charged one pass over the stored
/// facts for the build, the per-link bytes land in the traffic statistics,
/// and each worker's startup cost in virtual time is the transfer alone —
/// adoption on the worker side needs no re-interning and no re-indexing
/// (see [`p2mdie_logic::snapshot`]).
pub fn ship_kb<T: Transport>(ep: &mut Endpoint<T>, kb: &KnowledgeBase) {
    ep.advance_steps(kb.num_facts() as u64);
    ep.broadcast(&Msg::KbSnapshot(Box::new(kb.to_snapshot())));
}

/// Runs the master protocol of Figure 5. `total_pos` is `|E+|` over all
/// subsets; `settings` must be the same the workers use (shared data
/// assumption).
pub fn run_master<T: Transport>(
    ep: &mut Endpoint<T>,
    settings: &Settings,
    total_pos: usize,
) -> MasterOutcome {
    let p = ep.workers();
    let mut out = MasterOutcome::default();
    let mut remaining = total_pos;

    ep.broadcast(&Msg::LoadExamples);

    while remaining > 0 {
        out.epochs += 1;
        let epoch = out.epochs;
        let mut epoch_span = Some(span!(ep.tracer(), "epoch", ep.now(), epoch = epoch));
        let mut trace = EpochTrace {
            epoch,
            pipelines: vec![Vec::new(); p],
            bag_size: 0,
            accepted: 0,
        };

        // Fig. 5 steps 6–9: start p pipelines, gather the rule sets. The
        // pipeline of origin k delivers from its last stage, worker k-1
        // (wrapping), so receiving from ranks 1..=p in order collects all
        // of them deterministically.
        for k in 1..=p {
            ep.send(k, &Msg::StartPipeline { epoch });
        }
        let mut bag = RuleBag::new();
        let mut any_seed = false;
        for k in 1..=p {
            let msg = Msg::recv(ep, k, "RulesFound");
            let Msg::RulesFound {
                origin,
                rules,
                had_seed,
                trace: ptrace,
            } = msg
            else {
                panic!("master: expected RulesFound from rank {k}, got {msg:?}");
            };
            any_seed |= had_seed;
            for (clause, _, _) in rules {
                bag.insert(clause, origin);
            }
            trace.pipelines[origin as usize - 1] = ptrace;
        }
        trace.bag_size = bag.len() as u32;

        if !any_seed {
            // No worker has a live example but `remaining > 0`: the count
            // drifted (should be impossible). Bail out rather than spin.
            out.stalled = true;
            out.traces.push(trace);
            if let Some(s) = epoch_span.take() {
                s.end(ep.now());
            }
            break;
        }

        // Fig. 5 steps 10–22: consume the bag.
        let mut accepted_this_epoch = 0u32;
        if !bag.is_empty() {
            evaluate_bag(ep, p, &mut bag);
            loop {
                bag.drop_not_good(settings);
                if bag.is_empty() {
                    break;
                }
                // Bag bookkeeping is master-side compute: charge one step
                // per scanned rule.
                ep.advance_steps(bag.len() as u64);
                let best = bag.pick_best(settings.score).expect("bag non-empty");
                let (pos, neg) = (best.global_pos(), best.global_neg());
                ep.broadcast(&Msg::MarkCovered {
                    rule: best.clause.clone(),
                });
                remaining = remaining.saturating_sub(pos as usize);
                out.theory.push(AcceptedRule {
                    clause: best.clause,
                    pos,
                    neg,
                    epoch,
                    origin: best.origin,
                });
                accepted_this_epoch += 1;
                if bag.is_empty() {
                    break;
                }
                evaluate_bag(ep, p, &mut bag);
            }
        }
        trace.accepted = accepted_this_epoch;
        out.traces.push(trace);

        // Progress guarantee: an epoch that accepted nothing retires the
        // seed examples its pipelines started from (April sets aside
        // examples no good rule explains).
        if accepted_this_epoch == 0 && remaining > 0 {
            ep.broadcast(&Msg::RetireSeed);
            let mut retired = 0u32;
            for k in 1..=p {
                let msg = Msg::recv(ep, k, "SeedRetired");
                let Msg::SeedRetired { removed } = msg else {
                    panic!("master: expected SeedRetired from rank {k}, got {msg:?}");
                };
                retired += removed;
            }
            if retired == 0 {
                out.stalled = true;
                if let Some(s) = epoch_span.take() {
                    s.end(ep.now());
                }
                break;
            }
            remaining = remaining.saturating_sub(retired as usize);
            out.set_aside += retired;
        }
        if let Some(s) = epoch_span.take() {
            s.end_with(
                ep.now(),
                &[
                    ("accepted", accepted_this_epoch.into()),
                    ("remaining", (remaining as u64).into()),
                ],
            );
        }
    }

    ep.broadcast(&Msg::Stop);
    out
}

/// The §4.1 repartitioning variant: identical to [`run_master`] except that
/// the live examples are randomly re-dealt to the workers *before every
/// epoch* (shipping the example literals in full — the communication cost
/// the paper cites as the reason not to do this), and every `MarkCovered`
/// is answered with covered indices so the master can track the global
/// live set the next deal draws from.
pub fn run_master_repartition<T: Transport>(
    ep: &mut Endpoint<T>,
    settings: &Settings,
    examples: &p2mdie_ilp::examples::Examples,
    seed: u64,
) -> MasterOutcome {
    use p2mdie_ilp::bitset::Bitset;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let p = ep.workers();
    let mut out = MasterOutcome::default();
    let mut live = Bitset::full(examples.num_pos());

    ep.broadcast(&Msg::LoadExamples);

    while live.any() {
        out.epochs += 1;
        let epoch = out.epochs;
        let mut epoch_span = Some(span!(ep.tracer(), "epoch", ep.now(), epoch = epoch));
        let mut trace = EpochTrace {
            epoch,
            pipelines: vec![Vec::new(); p],
            bag_size: 0,
            accepted: 0,
        };

        // Re-deal the live positives (and all negatives) evenly.
        let mut rng = StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
        let mut live_idx: Vec<usize> = live.iter_ones().collect();
        live_idx.shuffle(&mut rng);
        let mut neg_idx: Vec<usize> = (0..examples.num_neg()).collect();
        neg_idx.shuffle(&mut rng);
        let mut assign: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (i, g) in live_idx.iter().enumerate() {
            assign[i % p].push(*g);
        }
        for (k, part) in assign.iter().enumerate() {
            let pos: Vec<_> = part.iter().map(|&g| examples.pos[g].clone()).collect();
            let neg: Vec<_> = neg_idx
                .iter()
                .skip(k)
                .step_by(p)
                .map(|&g| examples.neg[g].clone())
                .collect();
            ep.send(k + 1, &Msg::NewPartition { pos, neg });
        }

        // Pipelines, exactly as in the static master.
        for k in 1..=p {
            ep.send(k, &Msg::StartPipeline { epoch });
        }
        let mut bag = RuleBag::new();
        for k in 1..=p {
            let msg = Msg::recv(ep, k, "RulesFound");
            let Msg::RulesFound {
                origin,
                rules,
                had_seed: _,
                trace: ptrace,
            } = msg
            else {
                panic!("master: expected RulesFound from rank {k}, got {msg:?}");
            };
            for (clause, _, _) in rules {
                bag.insert(clause, origin);
            }
            trace.pipelines[origin as usize - 1] = ptrace;
        }
        trace.bag_size = bag.len() as u32;

        // Bag consumption with master-side live tracking.
        let mut accepted_this_epoch = 0u32;
        if !bag.is_empty() {
            evaluate_bag(ep, p, &mut bag);
            loop {
                bag.drop_not_good(settings);
                if bag.is_empty() {
                    break;
                }
                ep.advance_steps(bag.len() as u64);
                let best = bag.pick_best(settings.score).expect("bag non-empty");
                let (pos, neg) = (best.global_pos(), best.global_neg());
                ep.broadcast(&Msg::MarkCovered {
                    rule: best.clause.clone(),
                });
                for k in 1..=p {
                    let msg = Msg::recv(ep, k, "CoveredIdx");
                    let Msg::CoveredIdx { pos: covered } = msg else {
                        panic!("master: expected CoveredIdx from rank {k}, got {msg:?}");
                    };
                    for local in covered {
                        live.clear(assign[k - 1][local as usize]);
                    }
                }
                out.theory.push(AcceptedRule {
                    clause: best.clause,
                    pos,
                    neg,
                    epoch,
                    origin: best.origin,
                });
                accepted_this_epoch += 1;
                if bag.is_empty() {
                    break;
                }
                evaluate_bag(ep, p, &mut bag);
            }
        }
        trace.accepted = accepted_this_epoch;
        out.traces.push(trace);

        // Progress guarantee, master-side: a fresh partition means each
        // worker's epoch seed was its first assigned example.
        if accepted_this_epoch == 0 {
            let mut retired = 0u32;
            for part in &assign {
                if let Some(&g) = part.first() {
                    if live.get(g) {
                        live.clear(g);
                        retired += 1;
                    }
                }
            }
            if retired == 0 {
                out.stalled = true;
                if let Some(s) = epoch_span.take() {
                    s.end(ep.now());
                }
                break;
            }
            out.set_aside += retired;
        }
        if let Some(s) = epoch_span.take() {
            s.end_with(ep.now(), &[("accepted", accepted_this_epoch.into())]);
        }
    }

    ep.broadcast(&Msg::Stop);
    out
}

/// Receives one decoded message from `from` while watching every other
/// link: `Err(dead)` the moment an unacknowledged rank dies. A frame that
/// will not decode is a protocol error and panics with [`CommFailure`].
fn recv_msg_watching<T: Transport>(
    ep: &mut Endpoint<T>,
    from: usize,
    expected: &str,
) -> Result<Msg, usize> {
    match ep.recv_from_watching(from) {
        Ok(bytes) => match from_bytes(bytes) {
            Ok(msg) => Ok(msg),
            Err(error) => std::panic::panic_any(CommFailure {
                rank: ep.rank(),
                from,
                expected: expected.to_owned(),
                error: CommError::Decode(error),
            }),
        },
        Err(dead) => Err(dead),
    }
}

/// The self-healing master: [`run_master`] / [`run_master_repartition`]
/// semantics, but a worker death mid-run triggers the
/// repartition-and-resume protocol (see the module docs) instead of
/// unwinding the run.
///
/// `partition` selects the variant: `Some` is the static-partition
/// algorithm (the per-rank global-index map must describe the exact
/// subsets the workers hold), `None` the §4.1 repartitioning one (live
/// examples are re-dealt every epoch with `seed`, as in
/// [`run_master_repartition`]). Up to `max_rank_losses` deaths are
/// absorbed; one more fails the run with a rank-tagged error.
pub fn run_master_recovering<T: Transport>(
    ep: &mut Endpoint<T>,
    settings: &Settings,
    examples: &p2mdie_ilp::examples::Examples,
    partition: Option<&Partition>,
    seed: u64,
    max_rank_losses: u32,
) -> MasterOutcome {
    use p2mdie_ilp::bitset::Bitset;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let p = ep.workers();
    let mut out = MasterOutcome::default();
    let mut live = Bitset::full(examples.num_pos());
    let mut alive: Vec<usize> = (1..=p).collect();
    // Global positive/negative example indices per rank (index `k-1`), in
    // the rank's local order — the key that maps `CoveredIdx` replies back
    // to the global live set. Empty rows in repartition mode until the
    // first deal; a dead rank's rows are cleared.
    let (mut assign, mut neg_assign) = match partition {
        Some(part) => (part.pos.clone(), part.neg.clone()),
        None => (vec![Vec::new(); p], vec![Vec::new(); p]),
    };
    let statically_partitioned = partition.is_some();
    // Set after a death in repartition mode: the next epoch's deal must be
    // followed by a theory replay before its pipelines start.
    let mut resync_after_deal = false;

    ep.broadcast(&Msg::EnableRecovery);
    ep.broadcast(&Msg::LoadExamples);

    // Applies one rank's `CoveredIdx` reply to the global live set.
    fn apply_covered(live: &mut Bitset, row: &[usize], covered: &[u32]) {
        for &local in covered {
            live.clear(row[local as usize]);
        }
    }

    'run: while live.any() {
        out.epochs += 1;
        let epoch = out.epochs;
        let mut epoch_span = Some(span!(ep.tracer(), "epoch", ep.now(), epoch = epoch));
        let mut trace = EpochTrace {
            epoch,
            pipelines: vec![Vec::new(); p],
            bag_size: 0,
            accepted: 0,
        };

        // Recovery entry point for this epoch: aborts it, quiesces the
        // ring, redistributes, resyncs, then restarts via `continue 'run`.
        macro_rules! on_death {
            ($dead:expr) => {{
                let dead = $dead;
                out.rank_losses.push(dead as u32);
                if out.rank_losses.len() as u32 > max_rank_losses {
                    std::panic::panic_any(CommFailure {
                        rank: ep.rank(),
                        from: dead,
                        expected: format!(
                            "a live worker (recovery budget exhausted: \
                             {} rank losses, policy allows {max_rank_losses})",
                            out.rank_losses.len()
                        ),
                        error: CommError::Closed(RecvError {
                            rank: ep.rank(),
                            from: dead,
                            fault: LinkFault::Closed,
                        }),
                    });
                }
                ep.set_recovery_phase(true);
                ep.mark_down(dead);
                alive.retain(|&r| r != dead);

                // 1. Abort: tell every survivor, then drain each stream up
                // to its ack — coverage replies still apply, stale
                // pipeline/evaluation results are dropped.
                for &k in &alive {
                    ep.send(k, &Msg::AbortEpoch { dead: dead as u8 });
                }
                for &k in &alive {
                    loop {
                        match Msg::recv(ep, k, "an AbortAck") {
                            Msg::AbortAck => break,
                            Msg::CoveredIdx { pos } => {
                                apply_covered(&mut live, &assign[k - 1], &pos)
                            }
                            _ => {} // stale RulesFound / EvalResult / SeedRetired
                        }
                    }
                }
                ep.clear_pending(dead);

                if statically_partitioned {
                    // 2. Redistribute the orphaned examples over survivors.
                    let mut orphan_pos: Vec<usize> = assign[dead - 1]
                        .iter()
                        .copied()
                        .filter(|&g| live.get(g))
                        .collect();
                    let mut orphan_neg: Vec<usize> = std::mem::take(&mut neg_assign[dead - 1]);
                    assign[dead - 1].clear();
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (out.rank_losses.len() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                    );
                    orphan_pos.shuffle(&mut rng);
                    orphan_neg.shuffle(&mut rng);
                    let s = alive.len();
                    for (j, &k) in alive.iter().enumerate() {
                        let pos_idx: Vec<usize> =
                            orphan_pos.iter().skip(j).step_by(s).copied().collect();
                        let neg_idx: Vec<usize> =
                            orphan_neg.iter().skip(j).step_by(s).copied().collect();
                        ep.send(
                            k,
                            &Msg::AdoptExamples {
                                pos: pos_idx.iter().map(|&g| examples.pos[g].clone()).collect(),
                                neg: neg_idx.iter().map(|&g| examples.neg[g].clone()).collect(),
                            },
                        );
                        // Adoption appends, so local indices extend in sent
                        // order.
                        assign[k - 1].extend(pos_idx);
                        neg_assign[k - 1].extend(neg_idx);
                    }

                    // 3. Resync: replay the theory so both sides agree on
                    // the live set exactly.
                    if let Err(d) = replay_theory(ep, &alive, &out.theory, &assign, &mut live) {
                        std::panic::panic_any(CommFailure {
                            rank: ep.rank(),
                            from: d,
                            expected: "a ReplayTheory reply (second rank death mid-recovery)"
                                .to_owned(),
                            error: CommError::Closed(RecvError {
                                rank: ep.rank(),
                                from: d,
                                fault: LinkFault::Closed,
                            }),
                        });
                    }
                } else {
                    // Repartitioning mode re-deals every epoch anyway; the
                    // replay rides on the next deal.
                    resync_after_deal = true;
                }
                ep.set_recovery_phase(false);
                out.traces.push(trace);
                if let Some(s) = epoch_span.take() {
                    s.end_with(ep.now(), &[("aborted_by_death_of", (dead as u64).into())]);
                }
                continue 'run;
            }};
        }

        if !statically_partitioned {
            // Re-deal the live positives (and all negatives) evenly over
            // the *live* ranks (same formula as `run_master_repartition`).
            let mut rng = StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
            let mut live_idx: Vec<usize> = live.iter_ones().collect();
            live_idx.shuffle(&mut rng);
            let mut neg_idx: Vec<usize> = (0..examples.num_neg()).collect();
            neg_idx.shuffle(&mut rng);
            let s = alive.len();
            for row in assign.iter_mut() {
                row.clear();
            }
            for (i, g) in live_idx.iter().enumerate() {
                assign[alive[i % s] - 1].push(*g);
            }
            for (j, &k) in alive.iter().enumerate() {
                let pos: Vec<_> = assign[k - 1]
                    .iter()
                    .map(|&g| examples.pos[g].clone())
                    .collect();
                let neg: Vec<_> = neg_idx
                    .iter()
                    .skip(j)
                    .step_by(s)
                    .map(|&g| examples.neg[g].clone())
                    .collect();
                ep.send(k, &Msg::NewPartition { pos, neg });
            }
            if resync_after_deal {
                ep.set_recovery_phase(true);
                if let Err(d) = replay_theory(ep, &alive, &out.theory, &assign, &mut live) {
                    on_death!(d);
                }
                ep.set_recovery_phase(false);
                resync_after_deal = false;
                if !live.any() {
                    out.traces.push(trace);
                    if let Some(s) = epoch_span.take() {
                        s.end(ep.now());
                    }
                    break 'run;
                }
            }
        }

        // Pipelines over the live ring.
        for &k in &alive {
            ep.send(k, &Msg::StartPipeline { epoch });
        }
        let mut bag = RuleBag::new();
        let mut any_seed = false;
        for k in alive.clone() {
            let msg = match recv_msg_watching(ep, k, "RulesFound") {
                Ok(msg) => msg,
                Err(dead) => on_death!(dead),
            };
            let Msg::RulesFound {
                origin,
                rules,
                had_seed,
                trace: ptrace,
            } = msg
            else {
                panic!("master: expected RulesFound from rank {k}, got {msg:?}");
            };
            any_seed |= had_seed;
            for (clause, _, _) in rules {
                bag.insert(clause, origin);
            }
            trace.pipelines[origin as usize - 1] = ptrace;
        }
        trace.bag_size = bag.len() as u32;

        if statically_partitioned && !any_seed {
            out.stalled = true;
            out.traces.push(trace);
            if let Some(s) = epoch_span.take() {
                s.end(ep.now());
            }
            break;
        }

        // Bag consumption with master-side live tracking.
        let mut accepted_this_epoch = 0u32;
        if !bag.is_empty() {
            if let Err(dead) = evaluate_bag_recovering(ep, &alive, &mut bag) {
                on_death!(dead);
            }
            loop {
                bag.drop_not_good(settings);
                if bag.is_empty() {
                    break;
                }
                ep.advance_steps(bag.len() as u64);
                let best = bag.pick_best(settings.score).expect("bag non-empty");
                let (pos, neg) = (best.global_pos(), best.global_neg());
                for &k in &alive {
                    ep.send(
                        k,
                        &Msg::MarkCovered {
                            rule: best.clause.clone(),
                        },
                    );
                }
                // The acceptance is final the moment the broadcast is out:
                // per-channel FIFO order means every survivor asserts the
                // rule before it can see any abort.
                out.theory.push(AcceptedRule {
                    clause: best.clause,
                    pos,
                    neg,
                    epoch,
                    origin: best.origin,
                });
                accepted_this_epoch += 1;
                for k in alive.clone() {
                    match recv_msg_watching(ep, k, "CoveredIdx") {
                        Ok(Msg::CoveredIdx { pos: covered }) => {
                            apply_covered(&mut live, &assign[k - 1], &covered)
                        }
                        Ok(other) => {
                            panic!("master: expected CoveredIdx from rank {k}, got {other:?}")
                        }
                        Err(dead) => on_death!(dead),
                    }
                }
                if bag.is_empty() {
                    break;
                }
                if let Err(dead) = evaluate_bag_recovering(ep, &alive, &mut bag) {
                    on_death!(dead);
                }
            }
        }
        trace.accepted = accepted_this_epoch;

        // Progress guarantee.
        if accepted_this_epoch == 0 && live.any() {
            let before = live.count();
            if statically_partitioned {
                // Workers report their retired seed by local index.
                for &k in &alive {
                    ep.send(k, &Msg::RetireSeed);
                }
                for k in alive.clone() {
                    match recv_msg_watching(ep, k, "a retired-seed CoveredIdx") {
                        Ok(Msg::CoveredIdx { pos: covered }) => {
                            apply_covered(&mut live, &assign[k - 1], &covered)
                        }
                        Ok(other) => {
                            panic!("master: expected CoveredIdx from rank {k}, got {other:?}")
                        }
                        Err(dead) => on_death!(dead),
                    }
                }
            } else {
                // A fresh partition means each worker's seed was its first
                // assigned example; retire those master-side.
                for &k in &alive {
                    if let Some(&g) = assign[k - 1].first() {
                        live.clear(g);
                    }
                }
            }
            let retired = before - live.count();
            if retired == 0 {
                out.stalled = true;
                out.traces.push(trace);
                if let Some(s) = epoch_span.take() {
                    s.end(ep.now());
                }
                break;
            }
            out.set_aside += retired as u32;
        }
        out.traces.push(trace);
        if let Some(s) = epoch_span.take() {
            s.end_with(ep.now(), &[("accepted", accepted_this_epoch.into())]);
        }
    }

    for &k in &alive {
        ep.send(k, &Msg::Stop);
    }
    out
}

/// Ships the accepted theory to every survivor and folds their coverage
/// replies into the global live set; `Err(dead)` if a rank dies mid-round.
fn replay_theory<T: Transport>(
    ep: &mut Endpoint<T>,
    alive: &[usize],
    theory: &[AcceptedRule],
    assign: &[Vec<usize>],
    live: &mut p2mdie_ilp::bitset::Bitset,
) -> Result<(), usize> {
    let rules: Vec<Clause> = theory.iter().map(|r| r.clause.clone()).collect();
    for &k in alive {
        ep.send(
            k,
            &Msg::ReplayTheory {
                rules: rules.clone(),
            },
        );
    }
    for &k in alive {
        match recv_msg_watching(ep, k, "a ReplayTheory CoveredIdx")? {
            Msg::CoveredIdx { pos } => {
                for local in pos {
                    live.clear(assign[k - 1][local as usize]);
                }
            }
            other => panic!("master: expected CoveredIdx from rank {k}, got {other:?}"),
        }
    }
    Ok(())
}

/// [`evaluate_bag`] over the live ranks only, with death-watching receives.
fn evaluate_bag_recovering<T: Transport>(
    ep: &mut Endpoint<T>,
    alive: &[usize],
    bag: &mut RuleBag,
) -> Result<(), usize> {
    let rules = bag.clauses();
    for &k in alive {
        ep.send(
            k,
            &Msg::Evaluate {
                rules: rules.clone(),
            },
        );
    }
    let mut results = Vec::with_capacity(alive.len());
    for &k in alive {
        match recv_msg_watching(ep, k, "EvalResult")? {
            Msg::EvalResult { counts } => results.push(counts),
            other => panic!("master: expected EvalResult from rank {k}, got {other:?}"),
        }
    }
    bag.set_results(&results);
    Ok(())
}

/// One global evaluation round: broadcast the bag, collect per-subset
/// counts from every worker (Fig. 5 steps 10–11 / 18–19).
pub(crate) fn evaluate_bag<T: Transport>(ep: &mut Endpoint<T>, p: usize, bag: &mut RuleBag) {
    ep.broadcast(&Msg::Evaluate {
        rules: bag.clauses(),
    });
    let mut results = Vec::with_capacity(p);
    for k in 1..=p {
        let msg = Msg::recv(ep, k, "EvalResult");
        let Msg::EvalResult { counts } = msg else {
            panic!("master: expected EvalResult from rank {k}, got {msg:?}");
        };
        results.push(counts);
    }
    bag.set_results(&results);
}
