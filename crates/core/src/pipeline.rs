//! One pipeline stage: the paper's `learn_rule'` (Figure 7).
//!
//! A stage receives (or, at stage 1, creates) a token carrying ⊥e and a set
//! of rules `S`, runs a seeded breadth-first search on the *local* example
//! subset, merges `Good = S ∪ {new good rules}`, ranks by local score, cuts
//! to the pipeline width `W`, and forwards — to the next worker, or to the
//! master when this was stage `p`.

use crate::protocol::{PipelineToken, StageTrace};
use p2mdie_ilp::bitset::Bitset;
use p2mdie_ilp::bottom::BottomClause;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::refine::RuleShape;
use p2mdie_ilp::search::ScoredRule;
use p2mdie_ilp::settings::Width;
use std::collections::HashSet;

/// What a stage computed: the outgoing ranked rules and the fuel burnt.
#[derive(Clone, Debug)]
pub struct StageResult {
    /// `Good` after the width cut, ranked by local score.
    pub rules: Vec<ScoredRule>,
    /// Inference steps consumed by the stage's search.
    pub steps: u64,
}

/// Runs the search part of one pipeline stage on the local subset.
///
/// `incoming` is `S`, the rules from the previous stage (empty at stage 1).
/// Per Figure 7 the incoming rules *stay in the stream* even when the local
/// subset scores them badly; they are re-ranked with local scores where
/// available, keeping their previous-stage scores when the node budget ran
/// out before re-scoring them.
pub fn run_stage_search(
    engine: &IlpEngine,
    local: &Examples,
    live: &Bitset,
    bottom: &BottomClause,
    incoming: &[ScoredRule],
    width: Width,
) -> StageResult {
    let seeds: Vec<RuleShape> = incoming.iter().map(|r| r.shape.clone()).collect();
    let out = engine.search(bottom, local, Some(live), &seeds);

    // Good = S ∪ new-good. Locally re-scored seeds replace their incoming
    // versions; seeds the budget never reached keep their old scores.
    let mut merged: Vec<ScoredRule> = Vec::with_capacity(out.good.len() + incoming.len());
    let mut taken: HashSet<RuleShape> = HashSet::new();
    for r in out.seed_scored.iter().chain(out.good.iter()) {
        if taken.insert(r.shape.clone()) {
            merged.push(r.clone());
        }
    }
    for r in incoming {
        if taken.insert(r.shape.clone()) {
            merged.push(r.clone());
        }
    }
    merged.sort_by(|a, b| a.rank_key().cmp(&b.rank_key()));
    merged.truncate(width.cap());

    StageResult {
        rules: merged,
        steps: out.steps,
    }
}

/// Assembles the outgoing token for a non-final stage.
pub fn next_token(
    mut token_trace: Vec<StageTrace>,
    origin: u8,
    executed_step: u8,
    bottom: Option<BottomClause>,
    rules: Vec<ScoredRule>,
    stage_trace: StageTrace,
) -> PipelineToken {
    token_trace.push(stage_trace);
    PipelineToken {
        origin,
        step: executed_step + 1,
        bottom,
        rules,
        trace: token_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2mdie_ilp::modes::ModeSet;
    use p2mdie_ilp::settings::Settings;
    use p2mdie_logic::clause::Literal;
    use p2mdie_logic::kb::KnowledgeBase;
    use p2mdie_logic::symbol::SymbolTable;
    use p2mdie_logic::term::Term;

    fn engine_and_examples() -> (SymbolTable, IlpEngine, Examples) {
        let t = SymbolTable::new();
        let mut kb = KnowledgeBase::new(t.clone());
        for i in 1..=30i64 {
            if i % 2 == 0 {
                kb.assert_fact(Literal::new(t.intern("even"), vec![Term::Int(i)]));
            }
            if i % 3 == 0 {
                kb.assert_fact(Literal::new(t.intern("div3"), vec![Term::Int(i)]));
            }
        }
        let modes =
            ModeSet::parse(&t, "div6(+num)", &[(1, "even(+num)"), (1, "div3(+num)")]).unwrap();
        let tgt = t.intern("div6");
        let ex = Examples::new(
            (1..=30i64)
                .filter(|i| i % 6 == 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
            (1..=30i64)
                .filter(|i| i % 6 != 0)
                .map(|i| Literal::new(tgt, vec![Term::Int(i)]))
                .collect(),
        );
        let engine = IlpEngine::new(
            kb,
            modes,
            Settings {
                min_pos: 2,
                noise: 0,
                ..Settings::default()
            },
        );
        (t, engine, ex)
    }

    #[test]
    fn stage_one_finds_and_ranks_rules() {
        let (_, engine, ex) = engine_and_examples();
        let live = ex.full_pos_live();
        let bottom = engine.saturate(&ex.pos[0]).unwrap();
        let r = run_stage_search(&engine, &ex, &live, &bottom, &[], Width::Unlimited);
        assert!(!r.rules.is_empty());
        assert!(r.steps > 0);
        // Best rule must be the clean conjunction.
        assert_eq!(r.rules[0].neg, 0);
    }

    #[test]
    fn width_truncates_the_stream() {
        let (_, mut engine, ex) = engine_and_examples();
        // Allow noisy rules so that {even}, {div3} and {even, div3} are all
        // good and the stream has something to truncate.
        engine.settings.noise = 10;
        let live = ex.full_pos_live();
        let bottom = engine.saturate(&ex.pos[0]).unwrap();
        let wide = run_stage_search(&engine, &ex, &live, &bottom, &[], Width::Unlimited);
        let narrow = run_stage_search(&engine, &ex, &live, &bottom, &[], Width::Limit(1));
        assert!(wide.rules.len() > 1);
        assert_eq!(narrow.rules.len(), 1);
        assert_eq!(
            narrow.rules[0], wide.rules[0],
            "width cut keeps the best rules"
        );
    }

    #[test]
    fn incoming_rules_survive_even_if_locally_bad() {
        let (_, engine, ex) = engine_and_examples();
        // A live mask with zero live examples: nothing can be locally good.
        let live = Bitset::new(ex.num_pos());
        let bottom = engine.saturate(&ex.pos[0]).unwrap();
        let incoming = vec![ScoredRule {
            shape: RuleShape::from_indices(vec![0]),
            pos: 5,
            neg: 0,
            score: 5,
        }];
        let r = run_stage_search(&engine, &ex, &live, &bottom, &incoming, Width::Unlimited);
        assert!(
            r.rules.iter().any(|x| x.shape == incoming[0].shape),
            "Good = S must keep incoming rules in the stream"
        );
    }

    #[test]
    fn incoming_rules_are_rescored_locally() {
        let (_, engine, ex) = engine_and_examples();
        let live = ex.full_pos_live();
        let bottom = engine.saturate(&ex.pos[0]).unwrap();
        let incoming = vec![ScoredRule {
            shape: RuleShape::from_indices(vec![0]),
            pos: 999, // bogus score from "elsewhere"
            neg: 0,
            score: 999,
        }];
        let r = run_stage_search(&engine, &ex, &live, &bottom, &incoming, Width::Unlimited);
        let re = r
            .rules
            .iter()
            .find(|x| x.shape == incoming[0].shape)
            .unwrap();
        assert!(
            re.pos <= ex.num_pos() as u32,
            "local re-scoring replaced the bogus count"
        );
    }

    #[test]
    fn token_assembly_appends_trace() {
        let tok = next_token(
            vec![StageTrace {
                worker: 1,
                step: 1,
                start: 0.0,
                end: 1.0,
                rules_in: 0,
                rules_out: 2,
            }],
            1,
            2,
            None,
            vec![],
            StageTrace {
                worker: 2,
                step: 2,
                start: 1.0,
                end: 2.0,
                rules_in: 2,
                rules_out: 1,
            },
        );
        assert_eq!(tok.step, 3);
        assert_eq!(tok.trace.len(), 2);
        assert_eq!(tok.trace[1].worker, 2);
    }
}
