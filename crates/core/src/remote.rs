//! Multi-process deployment: run p²-mdie with workers as real OS
//! processes over a localhost TCP mesh.
//!
//! The in-process drivers hand each simulated rank its `WorkerContext`
//! through shared memory. A worker *process* has no shared memory, so
//! everything must travel over the wire — and since PR 3 it can: the
//! compiled background KB ships as [`Msg::KbSnapshot`] (symbol dictionary
//! included), and this module adds the two missing bootstrap messages,
//! [`Msg::Configure`] (role + modes + settings) and [`Msg::LoadPartition`]
//! (the example subset). A bootstrapped process reconstructs a
//! bit-identical engine:
//!
//! 1. restore the snapshot into a **fresh** symbol table — the
//!    id-preserving path, so every symbol id in later messages (clauses,
//!    examples, modes) means the same thing on both sides;
//! 2. adopt the KB *as shipped* (no re-pruning, no re-indexing, and — the
//!    store being column-native — no row materialization: the restored KB
//!    holds the snapshot's `TermId` columns and unifies straight against
//!    them, so a worker process's fact memory is the columnar footprint
//!    and nothing more);
//! 3. run the same worker loop ([`run_worker`] or the coverage baseline).
//!
//! Because virtual arrival times travel inside the TCP frames, a
//! multi-process run Lamport-merges the same clock values and makes the
//! same decisions as the in-process run: the induced theory, coverage
//! counts, and per-rank step counts are bit-identical to
//! `run_parallel` with KB shipping enabled and the same seed (pinned by
//! `crates/core/tests/tcp_cluster.rs`).
//!
//! # Resident mode
//!
//! A worker process that receives [`Msg::SubmitJob`] instead of the legacy
//! `Configure`/`LoadPartition` pair joins a resident service mesh
//! ([`crate::scheduler::Service::new_tcp`]): it runs the submitted job on
//! a clone of the adopted KB, then parks in the idle loop awaiting further
//! jobs. [`run_remote_worker`] reports how the session ended via
//! [`WorkerExit`] so the `p2mdie-worker` binary can exit with a distinct
//! code when its master vanished while it sat idle *between* jobs (not a
//! mid-job failure).
//!
//! Entry points: [`run_parallel_tcp`] / [`run_coverage_parallel_tcp`]
//! spawn the `p2mdie-worker` binary once per rank and drive the master on
//! the calling thread; `ParallelConfig::with_transport` routes
//! `run_parallel` here. Both are thin wrappers over the single-job
//! dispatch in [`crate::scheduler`].

use crate::baselines::{run_baseline_worker, BaselineReport, EvalGranularity};
use crate::driver::ParallelConfig;
use crate::protocol::{Msg, WorkerConfig, WorkerRole};
use crate::report::ParallelReport;
use crate::scheduler::{one_shot_coverage_tcp, one_shot_parallel_tcp, run_resident_worker};
use crate::strategy::{run_strategy_worker, Strategy, StrategyWorkerContext};
use crate::worker::{run_worker, WorkerContext};
use p2mdie_cluster::comm::Endpoint;
use p2mdie_cluster::transport::Transport;
use p2mdie_cluster::{ClusterError, CostModel};
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_logic::kb::KnowledgeBase;
use p2mdie_logic::symbol::SymbolTable;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// How to launch the worker processes of a TCP run.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Path to the `p2mdie-worker` binary. `None` = resolve via
    /// [`default_worker_bin`] (the `P2MDIE_WORKER_BIN` env var, then next
    /// to the current executable).
    pub worker_bin: Option<PathBuf>,
    /// Bound on the rendezvous handshake, the shutdown-report collection,
    /// and process reaping (not on the run itself, which is driven by the
    /// protocol and fails fast on dead links).
    pub timeout: Duration,
    /// Extra environment variables for the worker processes (failure
    /// injection in tests; empty in normal use).
    pub worker_env: Vec<(String, String)>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            worker_bin: None,
            timeout: Duration::from_secs(60),
            worker_env: Vec::new(),
        }
    }
}

impl TcpConfig {
    /// A config launching a specific worker binary.
    pub fn with_worker_bin(bin: impl Into<PathBuf>) -> Self {
        TcpConfig {
            worker_bin: Some(bin.into()),
            ..TcpConfig::default()
        }
    }

    pub(crate) fn resolve_worker_bin(&self) -> Result<PathBuf, ClusterError> {
        if let Some(bin) = &self.worker_bin {
            return Ok(bin.clone());
        }
        default_worker_bin().ok_or_else(|| ClusterError::Net {
            message: "cannot locate the p2mdie-worker binary: set TcpConfig::worker_bin, \
                      the P2MDIE_WORKER_BIN env var, or build it next to this executable \
                      (cargo build -p p2mdie-core --bin p2mdie-worker)"
                .to_owned(),
        })
    }
}

/// Best-effort resolution of the `p2mdie-worker` binary: the
/// `P2MDIE_WORKER_BIN` env var, then the current executable's directory
/// and its parent (which covers `target/<profile>/examples/…` and
/// `target/<profile>/deps/…` layouts).
pub fn default_worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("P2MDIE_WORKER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("p2mdie-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    for _ in 0..2 {
        let d = dir?;
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = d.parent();
    }
    None
}

pub(crate) fn spawn_worker(
    bin: &Path,
    rank: usize,
    addr: SocketAddr,
    tcp: &TcpConfig,
) -> io::Result<Child> {
    let mut cmd = Command::new(bin);
    cmd.arg("--connect")
        .arg(addr.to_string())
        .arg("--rank")
        .arg(rank.to_string())
        .arg("--timeout-secs")
        .arg(tcp.timeout.as_secs().max(1).to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    // The child inherits this process's environment, so a `P2MDIE_TRACE`
    // set on the driver reaches every worker process and each rank
    // streams its own `<base>.rank<N>.jsonl` (merged by the master at the
    // end of the run). `worker_env` entries layer on top.
    for (k, v) in &tcp.worker_env {
        cmd.env(k, v);
    }
    cmd.spawn()
}

/// Master-side bootstrap: ship the compiled KB, then each worker's
/// configuration and example subset. Must run before the protocol proper
/// (the worker processes block in [`run_remote_worker`]'s bootstrap loop
/// until all three messages arrived). The caller builds the full
/// [`WorkerConfig`] (role, bias, settings, strategy) so every launcher —
/// data-pipeline, baseline, or strategy — shares this one shipping path.
pub(crate) fn bootstrap_workers<T: Transport>(
    ep: &mut Endpoint<T>,
    engine: &IlpEngine,
    config: &WorkerConfig,
    subsets: &[Examples],
) {
    crate::master::ship_kb(ep, &engine.kb);
    for (i, subset) in subsets.iter().enumerate() {
        ep.send(i + 1, &Msg::Configure(Box::new(config.clone())));
        ep.send(
            i + 1,
            &Msg::LoadPartition {
                pos: subset.pos.clone(),
                neg: subset.neg.clone(),
            },
        );
    }
}

/// How a worker-process session ended — the return value of
/// [`run_remote_worker`], mapped to an exit code by the `p2mdie-worker`
/// binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerExit {
    /// The master said `Stop`: a clean end of the run (one-shot) or of the
    /// mesh (resident). The worker sends its shutdown report and exits 0.
    Finished,
    /// The master's link closed while the worker sat **idle between jobs**
    /// of a resident mesh. Not a mid-job failure — the binary exits with
    /// the distinct `IDLE_DISCONNECT_EXIT` code so supervisors (and
    /// `ChildSet::diagnose`) can tell a torn-down service from a crash.
    IdleDisconnect,
}

/// The worker-process entry: gather the bootstrap messages, rebuild the
/// engine, run the protocol until the mesh stops.
///
/// Two bootstrap shapes arrive on the wire:
///
/// - **Legacy one-shot**: `KbSnapshot` + [`Msg::Configure`] +
///   [`Msg::LoadPartition`] in any order, then the role's protocol loop
///   runs once to `Stop`.
/// - **Resident**: `KbSnapshot` + [`Msg::SubmitJob`] — the job runs on a
///   clone of the adopted KB, then the worker parks in the resident idle
///   loop for further jobs until `Stop` (or an idle disconnect).
///
/// The KB snapshot restores into a **fresh** symbol table before anything
/// else is interned, which reproduces the master's symbol ids exactly (the
/// snapshot carries the complete dictionary in id order) — every id-typed
/// payload of the protocol stays valid. The restored KB is adopted as
/// shipped, mirroring the in-process `ship_kb` adoption path bit for bit
/// (the snapshot already carries the master's mode-pruned posting lists,
/// so `IlpEngine::new`'s re-pruning is deliberately *not* run).
pub fn run_remote_worker<T: Transport>(ep: &mut Endpoint<T>) -> WorkerExit {
    let me = ep.rank();
    assert!(me >= 1, "run_remote_worker must not run on the master rank");
    let mut snap = None;
    let mut config: Option<WorkerConfig> = None;
    let mut local = None;
    while snap.is_none() || config.is_none() || local.is_none() {
        match Msg::recv(ep, 0, "a bootstrap message") {
            Msg::KbSnapshot(s) => snap = Some(*s),
            Msg::Configure(j) => config = Some(*j),
            Msg::LoadPartition { pos, neg } => local = Some(Examples::new(pos, neg)),
            Msg::SubmitJob {
                id,
                config,
                pos,
                neg,
            } => {
                // Resident bootstrap: the snapshot must already be adopted
                // (the service ships it before the first job).
                let snap = snap.unwrap_or_else(|| {
                    panic!("worker {me}: SubmitJob before the KB snapshot arrived")
                });
                let mut base = KnowledgeBase::from_snapshot(snap, SymbolTable::new())
                    .unwrap_or_else(|e| panic!("rank {me}: rejected KB snapshot: {e}"));
                crate::scheduler::run_submitted_job(ep, &base, id, *config, pos, neg);
                return run_resident_worker(ep, &mut base);
            }
            Msg::CancelJob { .. } => {} // advisory; nothing queued here yet
            Msg::Stop => return WorkerExit::Finished,
            other => panic!("worker {me}: unexpected bootstrap message {other:?}"),
        }
    }
    let (snap, config, local) = (
        snap.expect("gathered"),
        config.expect("gathered"),
        local.expect("gathered"),
    );

    let kb = KnowledgeBase::from_snapshot(snap, SymbolTable::new())
        .unwrap_or_else(|e| panic!("rank {me}: rejected KB snapshot: {e}"));
    let engine = IlpEngine {
        kb,
        modes: config.modes,
        settings: config.settings,
    };
    match config.role {
        WorkerRole::Pipeline { width, repartition } => {
            if config.strategy != Strategy::DataPipeline {
                // Non-default strategies replicate the full example set;
                // `local` *is* the full set (the launcher ships identical
                // subsets to every rank).
                run_strategy_worker(
                    ep,
                    StrategyWorkerContext::new(
                        engine,
                        local,
                        width,
                        config.strategy,
                        config.strategy_seed,
                    ),
                );
            } else {
                let mut ctx = WorkerContext::new(engine, local, width);
                ctx.repartition = repartition;
                run_worker(ep, ctx);
            }
        }
        WorkerRole::Coverage => run_baseline_worker(ep, engine, local),
    }
    WorkerExit::Finished
}

/// [`crate::driver::run_parallel`] with every worker a real OS process
/// over localhost TCP.
///
/// The background KB is always shipped (worker processes have no shared
/// memory to inherit it from), so the run to compare against is the
/// in-process one with `ParallelConfig::with_kb_shipping`: same theory,
/// same coverage counts, same per-rank step counts. `cfg.model` still
/// governs all virtual-time metering — wall-clock plays no role in the
/// reported numbers.
///
/// Thin wrapper: the mesh build and single-job lifecycle live in
/// [`crate::scheduler`].
pub fn run_parallel_tcp(
    engine: &IlpEngine,
    examples: &Examples,
    cfg: &ParallelConfig,
    tcp: &TcpConfig,
) -> Result<ParallelReport, ClusterError> {
    one_shot_parallel_tcp(engine, examples, cfg, tcp)
}

/// [`crate::baselines::run_coverage_parallel`] with worker processes over
/// localhost TCP (KB always shipped, as in [`run_parallel_tcp`]).
///
/// Thin wrapper over the single-job dispatch in [`crate::scheduler`].
pub fn run_coverage_parallel_tcp(
    engine: &IlpEngine,
    examples: &Examples,
    workers: usize,
    granularity: EvalGranularity,
    model: CostModel,
    seed: u64,
    tcp: &TcpConfig,
) -> Result<BaselineReport, ClusterError> {
    one_shot_coverage_tcp(engine, examples, workers, granularity, model, seed, tcp)
}
