//! The related-work baseline (paper §6): *data-parallel coverage testing*.
//!
//! Konstantopoulos (2003) and Graham, Page & Kamal (2003) parallelized ILP
//! differently from p²-mdie: a single master runs the ordinary MDIE search,
//! and only *coverage evaluation* is distributed — the candidate clause(s)
//! are broadcast, every worker scores them on its local example subset, and
//! the master sums the counts. Konstantopoulos shipped one clause per round
//! ([`EvalGranularity::PerClause`]); Graham et al. shipped a batch
//! ([`EvalGranularity::PerLevel`], one breadth-first level here). The paper
//! attributes Konstantopoulos' "poor results" to the smaller granularity —
//! implementing both lets this reproduction *measure* that explanation
//! against p²-mdie on the same virtual cluster.

use crate::protocol::Msg;
use p2mdie_cluster::comm::Endpoint;
use p2mdie_cluster::transport::Transport;
use p2mdie_cluster::{ClusterError, CostModel};
use p2mdie_ilp::bitset::Bitset;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::refine::RuleShape;
use p2mdie_logic::clause::Clause;
use std::collections::HashSet;

/// How many candidate clauses one evaluation round ships.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalGranularity {
    /// One clause per round (Konstantopoulos' design — latency-bound).
    PerClause,
    /// One breadth-first level per round (Graham et al.'s design).
    PerLevel,
}

/// Report of a coverage-parallel baseline run.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    /// The induced theory.
    pub theory: Vec<Clause>,
    /// Covering iterations (one rule or one set-aside each, like Fig. 1).
    pub epochs: u32,
    /// Positives set aside without a covering rule.
    pub set_aside: u32,
    /// Virtual time at the master — the baseline's `T(p)`.
    pub vtime: f64,
    /// Total communication in bytes.
    pub total_bytes: u64,
    /// Total messages.
    pub total_messages: u64,
    /// Sends the transport could not deliver (0 on a clean run).
    pub dropped_sends: u64,
    /// Wall-clock time of the simulation.
    pub wall: std::time::Duration,
}

impl BaselineReport {
    /// Communication volume in MBytes.
    pub fn megabytes(&self) -> f64 {
        self.total_bytes as f64 / 1.0e6
    }
}

/// Runs the coverage-parallel baseline on `workers` workers.
///
/// The master owns the search (saturation and refinement run on rank 0,
/// metered on its clock); only rule evaluation is distributed. Examples are
/// partitioned exactly as in p²-mdie so the comparison is like for like.
pub fn run_coverage_parallel(
    engine: &IlpEngine,
    examples: &Examples,
    workers: usize,
    granularity: EvalGranularity,
    model: CostModel,
    seed: u64,
) -> Result<BaselineReport, ClusterError> {
    run_coverage_parallel_opts(engine, examples, workers, granularity, model, seed, false)
}

/// [`run_coverage_parallel`] with snapshot-based KB shipping: when
/// `ship_kb` is set, workers start with an empty KB and the master ships
/// its compiled background theory once as a `Msg::KbSnapshot` (the same
/// wiring as `ParallelConfig::with_kb_shipping`).
///
/// Thin wrapper: the mesh build and single-job lifecycle live in
/// [`crate::scheduler`]; the wire framing is the legacy one, so reports
/// stay bit-identical to the pre-service implementation.
pub fn run_coverage_parallel_opts(
    engine: &IlpEngine,
    examples: &Examples,
    workers: usize,
    granularity: EvalGranularity,
    model: CostModel,
    seed: u64,
    ship_kb: bool,
) -> Result<BaselineReport, ClusterError> {
    crate::scheduler::one_shot_coverage(
        engine,
        examples,
        workers,
        granularity,
        model,
        seed,
        ship_kb,
    )
}

/// The worker side: evaluate and mark-covered, nothing else. Public so
/// the remote-worker bootstrap can run the same loop in a worker process.
pub fn run_baseline_worker<T: Transport>(
    ep: &mut Endpoint<T>,
    mut engine: IlpEngine,
    local: Examples,
) {
    let mut live = local.full_pos_live();
    loop {
        let msg = Msg::recv(ep, 0, "a baseline master command");
        match msg {
            Msg::KbSnapshot(snap) => {
                crate::worker::adopt_kb_snapshot(&mut engine, *snap, ep.rank())
            }
            Msg::LoadExamples => ep.advance_steps(local.len() as u64),
            Msg::Evaluate { rules } => {
                let mut counts = Vec::with_capacity(rules.len());
                for rule in &rules {
                    let cov = engine.evaluate(rule, &local, Some(&live), None);
                    ep.advance_steps(cov.steps);
                    counts.push((cov.pos_count(), cov.neg_count()));
                }
                ep.send(0, &Msg::EvalResult { counts });
            }
            Msg::MarkCovered { rule } => {
                let cov = engine.evaluate(&rule, &local, Some(&live), None);
                ep.advance_steps(cov.steps);
                let idx: Vec<u32> = cov.pos.iter_ones().map(|i| i as u32).collect();
                live.difference_with(&cov.pos);
                engine.assert_rule(rule);
                ep.send(0, &Msg::CoveredIdx { pos: idx });
            }
            Msg::Stop => return,
            other => panic!("baseline worker: unexpected message {other:?}"),
        }
    }
}

/// One distributed evaluation round: broadcast, gather, sum. Crate-visible
/// so the scheduler's coverage-query jobs run the identical round.
pub(crate) fn eval_round<T: Transport>(
    ep: &mut Endpoint<T>,
    clauses: &[Clause],
) -> Vec<(u32, u32)> {
    let p = ep.workers();
    ep.broadcast(&Msg::Evaluate {
        rules: clauses.to_vec(),
    });
    let mut totals = vec![(0u32, 0u32); clauses.len()];
    for k in 1..=p {
        let msg = Msg::recv(ep, k, "EvalResult");
        let Msg::EvalResult { counts } = msg else {
            panic!("baseline master: expected EvalResult, got {msg:?}");
        };
        assert_eq!(
            counts.len(),
            clauses.len(),
            "worker {k} count vector misaligned"
        );
        for (t, c) in totals.iter_mut().zip(counts) {
            t.0 += c.0;
            t.1 += c.1;
        }
    }
    totals
}

/// The master side: the ordinary sequential covering loop of Figure 1,
/// with every `evalOnExamples` replaced by a distributed round. Crate-
/// visible so the TCP driver can run the same master over processes.
pub(crate) fn baseline_master<T: Transport>(
    ep: &mut Endpoint<T>,
    engine: &IlpEngine,
    examples: &Examples,
    partition: &crate::partition::Partition,
    granularity: EvalGranularity,
) -> (Vec<Clause>, u32, u32) {
    let settings = &engine.settings;
    let mut live = examples.full_pos_live();
    let mut theory = Vec::new();
    let mut epochs = 0u32;
    let mut set_aside = 0u32;
    let mut cursor: Option<usize> = None;

    ep.broadcast(&Msg::LoadExamples);

    while live.any() {
        epochs += 1;
        let seed_idx = next_live(&live, cursor).expect("live set non-empty");
        cursor = Some(seed_idx);

        let Some(bottom) = engine.saturate(&examples.pos[seed_idx]) else {
            live.clear(seed_idx);
            set_aside += 1;
            continue;
        };
        ep.advance_steps(bottom.steps);

        // Breadth-first search; evaluation is the only distributed part.
        let mut frontier: Vec<RuleShape> = vec![RuleShape::empty()];
        let mut visited: HashSet<RuleShape> = HashSet::new();
        let mut nodes = 0usize;
        let mut best: Option<(RuleShape, u32, u32, i64)> = None;

        while !frontier.is_empty() && nodes < settings.max_nodes {
            let budget = settings.max_nodes - nodes;
            let batch_len = match granularity {
                EvalGranularity::PerClause => 1,
                EvalGranularity::PerLevel => frontier.len().min(budget),
            };
            let batch: Vec<RuleShape> = frontier.drain(..batch_len).collect();
            let clauses: Vec<Clause> = batch.iter().map(|s| s.to_clause(&bottom)).collect();
            let counts = eval_round(ep, &clauses);
            nodes += batch.len();
            ep.advance_steps(batch.len() as u64); // orchestration bookkeeping

            for (shape, (pos, neg)) in batch.into_iter().zip(counts) {
                let score = settings.score.score(pos, neg, shape.body_len());
                if settings.is_good(pos, neg)
                    && best.as_ref().is_none_or(|(bs, _, _, bsc)| {
                        (score, -(shape.body_len() as i64), &shape.lits)
                            > (*bsc, -(bs.body_len() as i64), &bs.lits)
                    })
                {
                    // NOTE: strictly-better comparison keeps determinism.
                    best = Some((shape.clone(), pos, neg, score));
                }
                if pos >= settings.min_pos {
                    for succ in shape.successors(&bottom, settings.max_body) {
                        if visited.insert(succ.clone()) {
                            frontier.push(succ);
                        }
                    }
                }
            }
        }

        match best {
            None => {
                live.clear(seed_idx);
                set_aside += 1;
            }
            Some((shape, _, _, _)) => {
                let clause = shape.to_clause(&bottom);
                ep.broadcast(&Msg::MarkCovered {
                    rule: clause.clone(),
                });
                let p = ep.workers();
                for k in 1..=p {
                    let msg = Msg::recv(ep, k, "CoveredIdx");
                    let Msg::CoveredIdx { pos } = msg else {
                        panic!("baseline master: expected CoveredIdx, got {msg:?}");
                    };
                    for local_idx in pos {
                        let global = partition.pos[k - 1][local_idx as usize];
                        if live.get(global) {
                            live.clear(global);
                        }
                    }
                }
                if live.get(seed_idx) {
                    // Proof bounds can make a rule miss its own seed on the
                    // worker holding it; guarantee progress anyway.
                    live.clear(seed_idx);
                    set_aside += 1;
                }
                theory.push(clause);
            }
        }
    }

    ep.broadcast(&Msg::Stop);
    (theory, epochs, set_aside)
}

fn next_live(live: &Bitset, prev: Option<usize>) -> Option<usize> {
    if let Some(p) = prev {
        if let Some(idx) = (p + 1..live.len()).find(|&i| live.get(i)) {
            return Some(idx);
        }
    }
    live.first()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_learns_the_trains_concept() {
        let ds = p2mdie_datasets::trains(20, 5);
        for gran in [EvalGranularity::PerLevel, EvalGranularity::PerClause] {
            let rep =
                run_coverage_parallel(&ds.engine, &ds.examples, 2, gran, CostModel::free(), 5)
                    .unwrap();
            assert!(!rep.theory.is_empty(), "{gran:?} must learn");
            // Theory must cover every positive, no negative (noise-free).
            let mut covered = Bitset::new(ds.examples.num_pos());
            for c in &rep.theory {
                let cov = ds.engine.evaluate(c, &ds.examples, None, None);
                assert_eq!(cov.neg_count(), 0);
                covered.union_with(&cov.pos);
            }
            assert_eq!(covered.count(), ds.examples.num_pos());
        }
    }

    #[test]
    fn per_clause_granularity_pays_in_messages_and_time() {
        let ds = p2mdie_datasets::trains(20, 5);
        let model = CostModel::beowulf_2005();
        let level = run_coverage_parallel(
            &ds.engine,
            &ds.examples,
            4,
            EvalGranularity::PerLevel,
            model,
            5,
        )
        .unwrap();
        let clause = run_coverage_parallel(
            &ds.engine,
            &ds.examples,
            4,
            EvalGranularity::PerClause,
            model,
            5,
        )
        .unwrap();
        assert!(
            clause.total_messages > 2 * level.total_messages,
            "per-clause rounds must send far more messages ({} vs {})",
            clause.total_messages,
            level.total_messages
        );
        assert!(
            clause.vtime > level.vtime,
            "latency-bound per-clause evaluation must be slower ({} vs {})",
            clause.vtime,
            level.vtime
        );
    }

    /// The snapshot-shipped baseline must induce the identical theory while
    /// accounting the KB transfer in the traffic statistics.
    #[test]
    fn baseline_kb_shipping_matches_shared_data() {
        let ds = p2mdie_datasets::trains(20, 5);
        let shared = run_coverage_parallel(
            &ds.engine,
            &ds.examples,
            2,
            EvalGranularity::PerLevel,
            CostModel::free(),
            5,
        )
        .unwrap();
        let shipped = run_coverage_parallel_opts(
            &ds.engine,
            &ds.examples,
            2,
            EvalGranularity::PerLevel,
            CostModel::free(),
            5,
            true,
        )
        .unwrap();
        assert_eq!(shared.theory, shipped.theory);
        assert_eq!(shared.epochs, shipped.epochs);
        assert!(
            shipped.total_bytes > shared.total_bytes,
            "the snapshot transfer must be byte-accounted"
        );
    }

    #[test]
    fn baseline_is_deterministic() {
        let ds = p2mdie_datasets::carcinogenesis(0.1, 3);
        let model = CostModel::beowulf_2005();
        let a = run_coverage_parallel(
            &ds.engine,
            &ds.examples,
            3,
            EvalGranularity::PerLevel,
            model,
            3,
        )
        .unwrap();
        let b = run_coverage_parallel(
            &ds.engine,
            &ds.examples,
            3,
            EvalGranularity::PerLevel,
            model,
            3,
        )
        .unwrap();
        assert_eq!(a.theory, b.theory);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert!((a.vtime - b.vtime).abs() < 1e-12);
    }

    #[test]
    fn baseline_matches_sequential_theory_quality() {
        // With the same settings, the distributed-evaluation search visits
        // the same lattice as the sequential one, so coverage of the final
        // theory should match the sequential run's.
        let ds = p2mdie_datasets::trains(20, 5);
        let seq = ds.engine.run_sequential(&ds.examples);
        let par = run_coverage_parallel(
            &ds.engine,
            &ds.examples,
            2,
            EvalGranularity::PerLevel,
            CostModel::free(),
            5,
        )
        .unwrap();
        assert_eq!(seq.theory.len(), par.theory.len());
    }
}
