//! Flight-recorder determinism and zero-overhead guarantees, end to end.
//!
//! The tentpole invariant: with the same seed, a traced run — even one
//! that loses a rank mid-flight to `ChaosTransport` and self-heals —
//! produces a **byte-identical** Chrome `trace_event` export every time,
//! because spans and events are ordered on the deterministic virtual-time
//! axis (wall-clock never reaches the export). The companion invariant:
//! with no trace session and sampling off, the whole instrumentation
//! layer records nothing at all.
//!
//! Trace sessions are process-global (one at a time), so every test that
//! starts one serializes on [`TRACE_LOCK`].

use p2mdie_cluster::ChaosConfig;
use p2mdie_core::driver::{run_parallel, ParallelConfig, RecoveryPolicy};
use p2mdie_ilp::settings::Width;
use p2mdie_obs::metrics::hot;
use p2mdie_obs::trace::{self, TraceConfig};
use p2mdie_obs::validate_chrome;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn recovering_cfg(workers: usize) -> ParallelConfig {
    ParallelConfig::new(workers, Width::Limit(10), 5)
        .with_recovery(RecoveryPolicy::Repartition { max_rank_losses: 1 })
}

/// One traced 3-rank learning run with rank 1 killed mid-epoch, returning
/// the Chrome export of the whole mesh's timeline.
fn traced_chaos_chrome() -> String {
    let ds = p2mdie_datasets::trains(16, 5);
    let cfg = recovering_cfg(3).with_chaos(1, ChaosConfig::new(7).kill_after_sends(4));
    assert!(
        trace::start(TraceConfig::default()),
        "no other trace session may be active"
    );
    let rep = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();
    assert_eq!(rep.rank_losses, vec![1], "the chaos kill must have landed");
    let (trace, _summary) = trace::finish().expect("session was active");
    trace.chrome_json()
}

/// Same seed, same kill, twice: the Chrome JSON must match byte for byte,
/// and the recovery machinery must be visible as named spans on the
/// timeline (the `recovery` phase on the endpoints, the `quiesce` drain
/// on the surviving workers, `epoch` spans on the master).
#[test]
fn chaos_run_trace_is_byte_reproducible() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let first = traced_chaos_chrome();
    let second = traced_chaos_chrome();
    assert_eq!(
        first, second,
        "same seed must produce a bit-identical Chrome export"
    );
    let events = validate_chrome(&first).expect("well-formed, properly nested trace");
    assert!(events > 0, "the run must have recorded something");
    for name in ["\"recovery\"", "\"quiesce\"", "\"epoch\"", "\"stage\""] {
        assert!(
            first.contains(name),
            "expected a {name} span in the recovered run's trace"
        );
    }
    assert!(
        first.contains("\"send\"") && first.contains("\"recv\""),
        "endpoint events must be on the timeline"
    );
}

/// With no session started and sampling off, the flight recorder is
/// inert: no trace events buffer anywhere and the prover hot counters
/// never move — the disabled path is a single relaxed load per site,
/// regardless of the configured sampling ratio.
#[test]
fn disabled_recorder_records_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap();
    hot::reset();
    // A non-default sampling ratio must not weaken the off guard: the
    // ratio only shapes what an *enabled* session records.
    hot::set_sample_every(8);
    assert!(!trace::enabled());
    assert!(!hot::enabled());

    let ds = p2mdie_datasets::trains(12, 5);
    let rep = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(2, Width::Limit(10), 5),
    )
    .unwrap();
    assert!(!rep.theory.is_empty());

    assert_eq!(
        hot::total_recorded(),
        0,
        "hot counters must not move while sampling is off"
    );
    assert!(
        !trace::enabled(),
        "a run must not start a trace session on its own"
    );
    hot::set_sample_every(1);
    hot::reset();
}
