//! The strategy seam's backward-compatibility contract: routing a run
//! through [`ParallelConfig::with_strategy`] with
//! [`Strategy::DataPipeline`] must be **bit-identical** to the pre-seam
//! composition — `run_cluster` driving `run_master` against one
//! `run_worker` per rank over a seeded static partition. Not just the
//! theory: epochs, set-aside count, virtual time, per-rank inference
//! steps, and the traffic totals must all match, and the dedicated
//! constraint-traffic row must stay zero (the data-pipeline protocol
//! never broadcasts constraints).
//!
//! The randomized differential sweep covers worker counts, seeds, and
//! pipeline widths, so any conditional the seam might have leaked into
//! the legacy path shows up as a diff here.

use p2mdie_cluster::{run_cluster, ClusterOutcome, CostModel};
use p2mdie_core::driver::{run_parallel, ParallelConfig, TransportKind};
use p2mdie_core::master::{run_master, MasterOutcome};
use p2mdie_core::partition::partition_examples;
use p2mdie_core::remote::TcpConfig;
use p2mdie_core::worker::{run_worker, WorkerContext};
use p2mdie_core::Strategy;
use p2mdie_ilp::engine::IlpEngine;
use p2mdie_ilp::examples::Examples;
use p2mdie_ilp::settings::Width;
use proptest::prelude::*;
use std::sync::Mutex;

/// The pre-seam shape of `run_parallel`: partition the examples, run the
/// Figure-5/6/7 protocol directly on the simulated cluster. Pinning
/// `eval_threads` to 1 on both sides keeps the composition independent of
/// the machine's core count.
fn pre_seam_run(
    engine: &IlpEngine,
    examples: &Examples,
    workers: usize,
    width: Width,
    seed: u64,
) -> ClusterOutcome<MasterOutcome> {
    let (subsets, _partition) = partition_examples(examples, workers, seed);
    let contexts: Vec<Mutex<Option<WorkerContext>>> = subsets
        .into_iter()
        .map(|local| Mutex::new(Some(WorkerContext::new(engine.clone(), local, width))))
        .collect();
    let settings = engine.settings.clone();
    let total_pos = examples.num_pos();
    run_cluster(
        workers,
        CostModel::beowulf_2005(),
        |ep| run_master(ep, &settings, total_pos),
        |ep| {
            let ctx = contexts[ep.rank() - 1]
                .lock()
                .expect("context lock")
                .take()
                .expect("each context taken once");
            run_worker(ep, ctx);
        },
    )
    .expect("pre-seam cluster run")
}

fn pinned_engine(ds: &p2mdie_datasets::Dataset) -> IlpEngine {
    let mut engine = ds.engine.clone();
    engine.settings.eval_threads = 1;
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential: the seam's `DataPipeline` arm vs the inline pre-seam
    /// composition, across worker counts, seeds, and widths.
    #[test]
    fn data_pipeline_through_the_seam_is_bit_identical(
        workers in 1usize..=3,
        seed in 0u64..6,
        width_pick in 0usize..3,
    ) {
        let width = [Width::Unlimited, Width::Limit(4), Width::Limit(10)][width_pick];
        let ds = p2mdie_datasets::trains(12, 5);
        let engine = pinned_engine(&ds);

        let cfg = ParallelConfig::new(workers, width, seed)
            .with_strategy(Strategy::DataPipeline);
        let seam = run_parallel(&engine, &ds.examples, &cfg).expect("seam run");
        let pre = pre_seam_run(&engine, &ds.examples, workers, width, seed);

        prop_assert_eq!(&seam.theory, &pre.result.theory, "theory drifted");
        prop_assert_eq!(seam.epochs, pre.result.epochs, "epochs drifted");
        prop_assert_eq!(seam.set_aside, pre.result.set_aside);
        prop_assert_eq!(seam.stalled, pre.result.stalled);
        prop_assert_eq!(seam.vtime, pre.master_vtime, "master clock drifted");
        prop_assert_eq!(&seam.worker_vtimes, &pre.worker_vtimes);
        prop_assert_eq!(&seam.worker_steps, &pre.worker_steps, "per-rank steps drifted");
        prop_assert_eq!(seam.total_bytes, pre.stats.total_bytes(), "traffic bytes drifted");
        prop_assert_eq!(seam.total_messages, pre.stats.total_messages());
        prop_assert_eq!(seam.dropped_sends, 0u64);
        prop_assert_eq!(
            seam.constraint_bytes, 0u64,
            "the data-pipeline protocol must never meter constraint traffic"
        );
        prop_assert_eq!(seam.constraint_messages, 0u64);
        prop_assert_eq!(pre.stats.constraint_bytes(), 0u64);
    }
}

/// The default `ParallelConfig` takes the seam's `DataPipeline` arm, so a
/// caller that never heard of strategies gets the paper's protocol
/// unchanged — same report as asking for it explicitly.
#[test]
fn default_config_is_the_data_pipeline_strategy() {
    let ds = p2mdie_datasets::trains(12, 5);
    let engine = pinned_engine(&ds);
    let implicit = run_parallel(
        &engine,
        &ds.examples,
        &ParallelConfig::new(2, Width::Limit(10), 7),
    )
    .expect("implicit run");
    let explicit = run_parallel(
        &engine,
        &ds.examples,
        &ParallelConfig::new(2, Width::Limit(10), 7).with_strategy(Strategy::DataPipeline),
    )
    .expect("explicit run");
    assert_eq!(implicit.theory, explicit.theory);
    assert_eq!(implicit.epochs, explicit.epochs);
    assert_eq!(implicit.vtime, explicit.vtime);
    assert_eq!(implicit.total_bytes, explicit.total_bytes);
    assert_eq!(implicit.worker_steps, explicit.worker_steps);
}

/// Cross-strategy smoke over real worker processes: each non-default
/// strategy run on a localhost TCP mesh induces the same theory, epochs,
/// and per-rank steps as its in-process twin, and the constraint-driven
/// run's exchange traffic makes it back to the master through the
/// per-worker [`Msg::WorkerReport`] counters.
#[test]
fn strategies_over_tcp_match_in_process_runs() {
    let worker_bin = env!("CARGO_BIN_EXE_p2mdie-worker");
    let ds = p2mdie_datasets::trains(12, 5);
    let engine = pinned_engine(&ds);

    for strategy in [Strategy::SearchPartition, Strategy::ConstraintDriven] {
        let cfg = ParallelConfig::new(2, Width::Limit(10), 5)
            .with_strategy(strategy)
            .with_kb_shipping();
        let reference = run_parallel(&engine, &ds.examples, &cfg).expect("in-process run");

        let tcp_cfg = cfg
            .clone()
            .with_transport(TransportKind::Tcp(TcpConfig::with_worker_bin(worker_bin)));
        let tcp = run_parallel(&engine, &ds.examples, &tcp_cfg).expect("TCP run");

        assert_eq!(reference.theory, tcp.theory, "{strategy}: theory drifted");
        assert_eq!(reference.epochs, tcp.epochs, "{strategy}");
        assert_eq!(reference.set_aside, tcp.set_aside, "{strategy}");
        assert_eq!(
            reference.worker_steps, tcp.worker_steps,
            "{strategy}: per-rank steps drifted"
        );
        assert_eq!(tcp.dropped_sends, 0, "{strategy}");
        if strategy == Strategy::ConstraintDriven {
            assert!(
                tcp.constraint_messages > 0,
                "the workers' constraint exchange must reach the master's meters"
            );
            assert!(tcp.constraint_bytes > 0);
            assert!(tcp.constraint_bytes < tcp.total_bytes);
        } else {
            assert_eq!(tcp.constraint_bytes, 0, "{strategy} metered constraints");
        }
    }
}
