//! End-to-end multi-process cluster tests: a real master process (this
//! test) plus real `p2mdie-worker` OS processes over localhost TCP.
//!
//! The load-bearing assertion: a multi-process run is **bit-identical** to
//! the in-process simulation with the same `ParallelConfig` seed — same
//! induced theory, same coverage counts on every accepted rule, same
//! epochs, same per-rank metered steps, same pipeline rule flow. The
//! failure tests pin that a worker process dying early or emitting a
//! malformed frame surfaces as a rank-tagged error at the master instead
//! of a hang (every run is bounded by a watchdog timeout).

use p2mdie_cluster::{ClusterError, CostModel};
use p2mdie_core::baselines::{run_coverage_parallel_opts, EvalGranularity};
use p2mdie_core::driver::{run_parallel, ParallelConfig, RecoveryPolicy, TransportKind};
use p2mdie_core::remote::{run_coverage_parallel_tcp, TcpConfig};
use p2mdie_ilp::settings::Width;
use std::sync::mpsc;
use std::time::Duration;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_p2mdie-worker");
const WATCHDOG: Duration = Duration::from_secs(120);

fn tcp_config() -> TcpConfig {
    TcpConfig::with_worker_bin(WORKER_BIN)
}

/// Runs `f` on a watchdog thread; a hang fails the test instead of
/// stalling the suite.
fn bounded<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(r) => {
            let _ = handle.join();
            r
        }
        Err(_) => panic!("multi-process run exceeded the {WATCHDOG:?} watchdog (hang?)"),
    }
}

/// The acceptance run: master + ≥2 real worker processes inducing on the
/// trains dataset must reproduce the in-process run exactly. The
/// in-process reference uses KB shipping (a TCP run always ships the KB —
/// worker processes have no shared memory), which is already pinned to
/// induce identically to the shared-memory run.
#[test]
fn tcp_processes_match_in_process_run_bit_for_bit() {
    let ds = p2mdie_datasets::trains(20, 5);
    for p in [2usize, 3] {
        let cfg = ParallelConfig::new(p, Width::Limit(10), 5).with_kb_shipping();
        let reference = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();

        let tcp_cfg = cfg.clone().with_transport(TransportKind::Tcp(tcp_config()));
        let engine = ds.engine.clone();
        let examples = ds.examples.clone();
        let tcp = bounded(move || run_parallel(&engine, &examples, &tcp_cfg)).unwrap();

        // Induced theory with coverage counts, epoch and origin of every
        // accepted rule — the algorithm's entire observable decision
        // sequence.
        assert_eq!(reference.theory, tcp.theory, "p={p}: theory drifted");
        assert_eq!(reference.epochs, tcp.epochs, "p={p}");
        assert_eq!(reference.set_aside, tcp.set_aside, "p={p}");
        assert!(!tcp.stalled, "p={p}");
        // Metered inference steps per rank (saturation, search, coverage
        // proofs) are bit-identical.
        assert_eq!(reference.worker_steps, tcp.worker_steps, "p={p}");
        // Pipeline rule flow: same rules in/out of every stage.
        let flow = |rep: &p2mdie_core::report::ParallelReport| -> Vec<(u8, u8, u32, u32)> {
            rep.traces
                .iter()
                .flat_map(|t| t.pipelines.iter().flatten())
                .map(|s| (s.worker, s.step, s.rules_in, s.rules_out))
                .collect()
        };
        assert_eq!(flow(&reference), flow(&tcp), "p={p}: stage flow drifted");
        // Nothing was lost on the wire.
        assert_eq!(tcp.dropped_sends, 0, "p={p}");
        // The TCP run ships the same protocol traffic plus the bootstrap
        // (Configure + LoadPartition), so its byte total strictly
        // dominates the in-process one.
        assert!(
            tcp.total_bytes > reference.total_bytes,
            "p={p}: bootstrap must be byte-accounted ({} vs {})",
            tcp.total_bytes,
            reference.total_bytes
        );
    }
}

/// The coverage-parallel baseline over real processes induces the same
/// theory as its in-process twin.
#[test]
fn tcp_coverage_baseline_matches_in_process() {
    let ds = p2mdie_datasets::trains(20, 5);
    let model = CostModel::beowulf_2005();
    let reference = run_coverage_parallel_opts(
        &ds.engine,
        &ds.examples,
        2,
        EvalGranularity::PerLevel,
        model,
        5,
        true, // ship the KB, as the TCP run must
    )
    .unwrap();
    let engine = ds.engine.clone();
    let examples = ds.examples.clone();
    let tcp = bounded(move || {
        run_coverage_parallel_tcp(
            &engine,
            &examples,
            2,
            EvalGranularity::PerLevel,
            model,
            5,
            &tcp_config(),
        )
    })
    .unwrap();
    assert_eq!(reference.theory, tcp.theory);
    assert_eq!(reference.epochs, tcp.epochs);
    assert_eq!(reference.set_aside, tcp.set_aside);
    assert_eq!(tcp.dropped_sends, 0);
}

fn failing_run(injection: &str) -> Result<(), ClusterError> {
    let ds = p2mdie_datasets::trains(8, 5);
    let mut tcp = tcp_config();
    tcp.timeout = Duration::from_secs(30);
    tcp.worker_env
        .push(("P2MDIE_TEST_FAIL".to_owned(), injection.to_owned()));
    let cfg = ParallelConfig::new(2, Width::Limit(10), 5).with_transport(TransportKind::Tcp(tcp));
    let injection = injection.to_owned();
    bounded(move || {
        run_parallel(&ds.engine, &ds.examples, &cfg)
            .map(|_| ())
            .map_err(|e| {
                eprintln!("({injection}) surfaced: {e}");
                e
            })
    })
}

/// A worker process that exits right after the handshake must surface as a
/// rank-tagged error at the master — not a hang.
#[test]
fn early_worker_exit_surfaces_rank_tagged_error() {
    let err = failing_run("exit:1").unwrap_err();
    match &err {
        ClusterError::Comm { rank, message } => {
            assert_eq!(*rank, 1, "{err}");
            assert!(message.contains("rank 1"), "{err}");
        }
        other => panic!("expected a Comm error naming rank 1, got {other}"),
    }
}

/// A worker process that sends a malformed frame must surface as a
/// rank-tagged error naming the framing failure — not a hang, not a panic.
#[test]
fn malformed_frame_surfaces_rank_tagged_error() {
    let err = failing_run("badframe:1").unwrap_err();
    match &err {
        ClusterError::Comm { rank, message } => {
            assert_eq!(*rank, 1, "{err}");
            assert!(message.contains("malformed"), "{err}");
        }
        other => panic!("expected a Comm error naming rank 1, got {other}"),
    }
}

/// The recovery tentpole over real OS processes: a worker process that
/// dies mid-run (`exit-after` kills it after a deterministic number of
/// received messages — well into the first pipelines) is recovered around
/// under `RecoveryPolicy::Repartition`, and the run completes with the
/// fault-free TCP run's exact theory and coverage counts.
#[test]
fn killed_worker_process_mid_run_is_recovered_around() {
    let ds = p2mdie_datasets::trains(16, 5);
    let base = ParallelConfig::new(3, Width::Limit(10), 5)
        .with_kb_shipping()
        .with_recovery(RecoveryPolicy::Repartition { max_rank_losses: 1 });

    let fault_free_cfg = base
        .clone()
        .with_transport(TransportKind::Tcp(tcp_config()));
    let engine = ds.engine.clone();
    let examples = ds.examples.clone();
    let fault_free = bounded(move || run_parallel(&engine, &examples, &fault_free_cfg)).unwrap();
    assert!(fault_free.rank_losses.is_empty());

    let mut tcp = tcp_config();
    tcp.timeout = Duration::from_secs(30);
    // 7 = past the bootstrap (snapshot, configure, partition, enable-
    // recovery, load) and the first StartPipeline: the process dies inside
    // epoch 1's pipelines, with stage work in flight.
    tcp.worker_env
        .push(("P2MDIE_TEST_FAIL".to_owned(), "exit-after:1:7".to_owned()));
    let killed_cfg = base.with_transport(TransportKind::Tcp(tcp));
    let engine = ds.engine.clone();
    let examples = ds.examples.clone();
    let healed = bounded(move || run_parallel(&engine, &examples, &killed_cfg)).unwrap();

    assert_eq!(healed.rank_losses, vec![1], "the death must be recorded");
    assert!(!healed.stalled);
    // The aborted epoch re-runs over the survivors, so a rule can be
    // re-found by a different pipeline with different variable numbering;
    // compare the decision sequence up to renaming, with exact coverage.
    let decisions = |rep: &p2mdie_core::report::ParallelReport| -> Vec<_> {
        rep.theory
            .iter()
            .map(|r| (r.clause.normalize(), r.pos, r.neg))
            .collect()
    };
    assert_eq!(
        decisions(&fault_free),
        decisions(&healed),
        "recovery changed the induced theory"
    );
    assert_eq!(fault_free.set_aside, healed.set_aside);
    assert!(
        healed.recovery_bytes > 0,
        "recovery traffic must be accounted"
    );
}

/// A worker process that wedges — completes the handshake, then goes
/// silent without exiting — must not hang teardown: when the run fails
/// (here because its sibling exits early), the master's diagnosis and
/// child reaping stay bounded even though the wedged process never closes
/// its pipes on its own.
#[test]
fn wedged_worker_process_cannot_hang_teardown() {
    let ds = p2mdie_datasets::trains(8, 5);
    let mut tcp = tcp_config();
    tcp.timeout = Duration::from_secs(10);
    tcp.worker_env
        .push(("P2MDIE_TEST_FAIL".to_owned(), "exit:1,stall:2".to_owned()));
    let cfg = ParallelConfig::new(2, Width::Limit(10), 5).with_transport(TransportKind::Tcp(tcp));
    let err = bounded(move || run_parallel(&ds.engine, &ds.examples, &cfg).unwrap_err());
    match &err {
        ClusterError::Comm { rank, .. } => assert_eq!(*rank, 1, "{err}"),
        other => panic!("expected a Comm error naming rank 1, got {other}"),
    }
}
