//! Differential tests for the resident ILP service: whatever mix of jobs
//! is multiplexed over one standing mesh, and in whatever order they are
//! submitted, every job's result must be bit-identical to running that job
//! alone on a fresh one-shot mesh. This is the service's core promise —
//! per-job pristine KB clones mean no job can observe another's accepted
//! rules, queue order cannot leak into results, and the resident fast path
//! (KB shipped once, examples delta-shipped per job) changes *where* work
//! runs but never *what* it computes.

use p2mdie_core::driver::{run_parallel, ParallelConfig};
use p2mdie_core::job::{JobOutcome, JobSpec, JobState};
use p2mdie_core::scheduler::{Service, ServiceConfig};
use p2mdie_ilp::settings::Width;
use proptest::collection;
use proptest::prelude::*;

const WORKERS: usize = 2;
const WIDTH: Width = Width::Limit(10);

/// What one job in the randomized mix is.
#[derive(Clone, Debug)]
enum Plan {
    /// A full learning run with this partition seed.
    Learn { seed: u64 },
    /// A coverage query over the theory a reference run learned.
    Coverage,
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    prop_oneof![
        (0u64..6).prop_map(|seed| Plan::Learn { seed }),
        Just(Plan::Coverage),
    ]
}

/// The solo (fresh one-shot mesh) result a service-run learn job must
/// reproduce bit for bit.
fn solo_learn(ds: &p2mdie_datasets::Dataset, seed: u64) -> p2mdie_core::report::ParallelReport {
    run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(WORKERS, WIDTH, seed),
    )
    .unwrap()
}

fn check_against_solo(ds: &p2mdie_datasets::Dataset, plan: &Plan, outcome: &JobOutcome) {
    assert_eq!(
        outcome.state,
        JobState::Done,
        "{}: job failed: {:?}",
        outcome.id,
        outcome.error
    );
    match plan {
        Plan::Learn { seed } => {
            let solo = solo_learn(ds, *seed);
            let learned = outcome.learned();
            assert_eq!(
                learned.theory, solo.theory,
                "seed {seed}: multiplexed learn drifted from the solo run"
            );
            assert_eq!(learned.epochs, solo.epochs, "seed {seed}: epochs drifted");
            assert_eq!(
                learned.set_aside, solo.set_aside,
                "seed {seed}: set-aside drifted"
            );
            assert_eq!(
                outcome.accounting.worker_steps, solo.worker_steps,
                "seed {seed}: per-job worker steps drifted from the fresh mesh"
            );
        }
        Plan::Coverage => {
            let solo = solo_learn(ds, 5);
            for (rule, counts) in solo.clauses().iter().zip(outcome.coverage()) {
                let cov = ds.engine.evaluate(rule, &ds.examples, None, None);
                assert_eq!(
                    (cov.pos_count(), cov.neg_count()),
                    *counts,
                    "coverage query drifted from direct global evaluation"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N jobs of mixed kinds, submitted in a random interleaving to one
    /// resident service, are each bit-identical to the same job alone on a
    /// fresh one-shot mesh.
    #[test]
    fn interleaved_jobs_match_solo_one_shot_runs(
        plans in collection::vec(plan_strategy(), 2..6),
        submit_order in collection::vec(0usize..64, 6),
    ) {
        let ds = p2mdie_datasets::trains(12, 5);
        let query_rules = solo_learn(&ds, 5).clauses();
        prop_assume!(!query_rules.is_empty());

        // Randomize the submission interleaving: sort the plans by the
        // generated keys (stable sort keeps equal keys deterministic).
        let mut order: Vec<usize> = (0..plans.len()).collect();
        order.sort_by_key(|&i| submit_order.get(i).copied().unwrap_or(0));

        let service = Service::new(&ds.engine, ServiceConfig::new(WORKERS));
        let mut handles = Vec::new();
        for &i in &order {
            let spec = match &plans[i] {
                Plan::Learn { seed } => {
                    JobSpec::learn(ds.examples.clone()).with_seed(*seed).with_width(WIDTH)
                }
                Plan::Coverage => {
                    JobSpec::coverage(ds.examples.clone(), query_rules.clone())
                }
            };
            handles.push((i, service.submit(spec).expect("queue_cap default fits the mix")));
        }
        for (i, handle) in handles {
            let outcome = handle.wait();
            check_against_solo(&ds, &plans[i], &outcome);
        }
        let report = service.shutdown().unwrap();
        prop_assert_eq!(report.jobs_run as usize, plans.len());
        prop_assert_eq!(report.dropped_sends, 0);
    }
}

/// The same mix twice over one service: later jobs run on the pristine
/// resident KB, not on a KB contaminated by earlier jobs' accepted rules.
#[test]
fn repeated_jobs_on_one_service_stay_identical() {
    let ds = p2mdie_datasets::trains(12, 5);
    let service = Service::new(&ds.engine, ServiceConfig::new(WORKERS));
    let first = service
        .submit(
            JobSpec::learn(ds.examples.clone())
                .with_seed(3)
                .with_width(WIDTH),
        )
        .unwrap()
        .wait();
    let second = service
        .submit(
            JobSpec::learn(ds.examples.clone())
                .with_seed(3)
                .with_width(WIDTH),
        )
        .unwrap()
        .wait();
    assert_eq!(first.state, JobState::Done);
    assert_eq!(second.state, JobState::Done);
    assert_eq!(
        first.learned().theory,
        second.learned().theory,
        "an earlier job's MarkCovered asserts leaked into the resident KB"
    );
    assert_eq!(
        first.accounting.worker_steps,
        second.accounting.worker_steps
    );
    service.shutdown().unwrap();
}

/// A baseline-learn job over the service matches the standalone
/// coverage-parallel baseline (same partition seed, same granularity).
#[test]
fn baseline_job_matches_the_standalone_baseline() {
    use p2mdie_cluster::CostModel;
    use p2mdie_core::baselines::{run_coverage_parallel, EvalGranularity};

    let ds = p2mdie_datasets::trains(12, 5);
    let solo = run_coverage_parallel(
        &ds.engine,
        &ds.examples,
        WORKERS,
        EvalGranularity::PerLevel,
        CostModel::beowulf_2005(),
        5,
    )
    .unwrap();

    let service = Service::new(&ds.engine, ServiceConfig::new(WORKERS));
    let outcome = service
        .submit(JobSpec::baseline(ds.examples.clone(), EvalGranularity::PerLevel).with_seed(5))
        .unwrap()
        .wait();
    assert_eq!(outcome.state, JobState::Done);
    let Some(p2mdie_core::job::JobOutput::BaselineLearned {
        theory,
        epochs,
        set_aside,
    }) = &outcome.output
    else {
        panic!("expected a baseline output, got {:?}", outcome.output);
    };
    assert_eq!(theory, &solo.theory);
    assert_eq!(*epochs, solo.epochs);
    assert_eq!(*set_aside, solo.set_aside);
    service.shutdown().unwrap();
}

/// Cancelling a job once it is already `Running` is advisory: the job
/// still reaches a legal terminal state (`Done` when the cancel lost the
/// race to the refill loop, `Failed` when it won), the late-cancel
/// [`Msg::CancelJob`](p2mdie_core::protocol::Msg::CancelJob) broadcast
/// never wedges the refill loop, and the mesh keeps serving later jobs
/// bit-identically.
#[test]
fn cancel_after_running_leaves_legal_state_and_does_not_wedge() {
    let ds = p2mdie_datasets::trains(12, 5);
    let service = Service::new(&ds.engine, ServiceConfig::new(WORKERS));

    let first = service
        .submit(
            JobSpec::learn(ds.examples.clone())
                .with_seed(3)
                .with_width(WIDTH),
        )
        .unwrap();
    // Give the refill loop time to dequeue and dispatch, then cancel
    // mid-run. The cancel is advisory, so whichever way the race goes the
    // outcome must be terminal and legal — no third option, no hang.
    std::thread::sleep(std::time::Duration::from_millis(20));
    first.cancel();
    let outcome = first.wait();
    match outcome.state {
        JobState::Done => {
            // Too late to stop: the job ran to completion and its result
            // is exactly the uncancelled one.
            assert_eq!(outcome.learned().theory, solo_learn(&ds, 3).theory);
        }
        JobState::Failed => {
            assert_eq!(
                outcome.error.as_deref(),
                Some("cancelled before dispatch"),
                "a cancelled job must fail with the queue-cancel reason"
            );
            assert!(outcome.output.is_none());
        }
        other => panic!("cancel left the job in a non-terminal state: {other:?}"),
    }

    // The refill loop must not be wedged by the advisory broadcast: a
    // subsequent job runs to completion and matches its solo run.
    let second = service
        .submit(
            JobSpec::learn(ds.examples.clone())
                .with_seed(4)
                .with_width(WIDTH),
        )
        .unwrap()
        .wait();
    assert_eq!(second.state, JobState::Done);
    assert_eq!(second.learned().theory, solo_learn(&ds, 4).theory);

    let report = service.shutdown().unwrap();
    assert_eq!(
        report.dropped_sends, 0,
        "every advisory CancelJob frame must have been deliverable"
    );
}

/// Live introspection over the wire (protocol v6): `Service::metrics()`
/// pulls one snapshot per resident worker while the mesh is idle, and the
/// per-worker inference-step counters must move by exactly the deltas the
/// job's own accounting reports — the two views are one measurement.
#[test]
fn service_metrics_snapshots_agree_with_job_accounting() {
    use p2mdie_obs::{MetricValue, MetricsSnapshot};

    fn steps(snaps: &[MetricsSnapshot]) -> Vec<u64> {
        snaps
            .iter()
            .map(|s| {
                s.entries
                    .iter()
                    .find_map(|e| match (e.name.as_str(), &e.value) {
                        ("worker_inference_steps_total", MetricValue::Counter(n)) => Some(*n),
                        _ => None,
                    })
                    .expect("every worker snapshot carries worker_inference_steps_total")
            })
            .collect()
    }

    let ds = p2mdie_datasets::trains(12, 5);
    let service = Service::new(&ds.engine, ServiceConfig::new(WORKERS));

    let idle = service.metrics().unwrap();
    assert_eq!(idle.len(), WORKERS, "one snapshot per resident worker");
    let before = steps(&idle);

    let outcome = service
        .submit(
            JobSpec::learn(ds.examples.clone())
                .with_seed(3)
                .with_width(WIDTH),
        )
        .unwrap()
        .wait();
    assert_eq!(outcome.state, JobState::Done);

    let after = steps(&service.metrics().unwrap());
    let deltas: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    assert_eq!(
        deltas, outcome.accounting.worker_steps,
        "wire snapshots drifted from the job's accounting deltas"
    );

    let report = service.shutdown().unwrap();
    assert_eq!(
        report.worker_metrics.len(),
        WORKERS,
        "shutdown must dump a final snapshot per worker"
    );
}
