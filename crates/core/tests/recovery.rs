//! End-to-end worker-death recovery tests, all in-process: the
//! `ChaosTransport` kills a rank's fabric deterministically mid-run and the
//! run must self-heal under `RecoveryPolicy::Repartition` — same induced
//! theory, same coverage counts as the fault-free run — instead of failing.
//!
//! The companion guarantee (default `RecoveryPolicy::Abort` keeps every
//! legacy outcome byte-for-byte) is pinned by the whole existing suite plus
//! `abort_policy_is_untouched_by_the_recovery_seam` below.

use p2mdie_cluster::ChaosConfig;
use p2mdie_core::driver::{run_parallel, ParallelConfig, RecoveryPolicy};
use p2mdie_core::report::ParallelReport;
use p2mdie_ilp::settings::Width;
use proptest::prelude::*;

/// The run's observable decision sequence: every accepted clause
/// (alpha-normalized) with its global coverage counts, in acceptance
/// order. Epoch numbers, pipeline origins, and variable numbering
/// legitimately differ across a recovery (the aborted epoch is re-run
/// over fewer ranks), so they are deliberately not compared.
fn decisions(rep: &ParallelReport) -> Vec<(p2mdie_logic::clause::Clause, u32, u32)> {
    rep.theory
        .iter()
        .map(|r| (r.clause.normalize(), r.pos, r.neg))
        .collect()
}

fn recovering_cfg(workers: usize) -> ParallelConfig {
    ParallelConfig::new(workers, Width::Limit(10), 5)
        .with_recovery(RecoveryPolicy::Repartition { max_rank_losses: 1 })
}

/// Killing rank 1 mid-run must not change what the cluster learns: theory
/// and coverage counts bit-identical to the fault-free run, with the death
/// and its recovery traffic visible in the report.
#[test]
fn killed_rank_mid_run_does_not_change_the_theory() {
    let ds = p2mdie_datasets::trains(16, 5);
    let fault_free = run_parallel(&ds.engine, &ds.examples, &recovering_cfg(3)).unwrap();
    assert!(fault_free.rank_losses.is_empty());
    assert!(!fault_free.stalled);

    // Rank 1's fabric dies after its 4th send — mid-epoch, after real
    // pipeline traffic has flowed.
    let cfg = recovering_cfg(3).with_chaos(1, ChaosConfig::new(7).kill_after_sends(4));
    let healed = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();

    assert_eq!(healed.rank_losses, vec![1], "the death must be recorded");
    assert!(!healed.stalled);
    assert_eq!(
        decisions(&fault_free),
        decisions(&healed),
        "recovery changed the induced theory"
    );
    assert_eq!(fault_free.set_aside, healed.set_aside);
    assert!(
        healed.recovery_bytes > 0 && healed.recovery_messages > 0,
        "recovery traffic must be accounted separately"
    );
    assert_eq!(
        fault_free.recovery_bytes, 0,
        "a fault-free run spends nothing on recovery"
    );
}

/// Same guarantee under the §4.1 repartitioning variant (the master
/// re-deals every epoch; recovery rides on the next deal).
#[test]
fn killed_rank_under_repartitioning_does_not_change_the_theory() {
    let ds = p2mdie_datasets::trains(16, 5);
    let cfg = recovering_cfg(3).with_repartition();
    let fault_free = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();
    assert!(!fault_free.stalled);

    let killed = cfg
        .clone()
        .with_chaos(2, ChaosConfig::new(11).kill_after_sends(4));
    let healed = run_parallel(&ds.engine, &ds.examples, &killed).unwrap();
    assert_eq!(healed.rank_losses, vec![2]);
    assert!(!healed.stalled);
    assert_eq!(decisions(&fault_free), decisions(&healed));
}

/// A second death exceeds `max_rank_losses: 1` and must fail the run with
/// a rank-tagged error rather than hang or learn a wrong theory.
#[test]
fn losses_beyond_the_budget_fail_the_run() {
    let ds = p2mdie_datasets::trains(12, 5);
    let cfg = ParallelConfig::new(3, Width::Limit(10), 5)
        .with_recovery(RecoveryPolicy::Repartition { max_rank_losses: 0 })
        .with_chaos(1, ChaosConfig::new(3).kill_after_sends(2));
    let err = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("recovery budget") || msg.contains("rank"),
        "unhelpful error: {msg}"
    );
}

/// The recovery seam itself (EnableRecovery + index-tracked replies) must
/// not change what a fault-free run learns relative to the legacy
/// `Abort`-policy protocol.
#[test]
fn fault_free_recovering_run_matches_the_legacy_protocol() {
    let ds = p2mdie_datasets::trains(16, 5);
    let legacy = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(3, Width::Limit(10), 5),
    )
    .unwrap();
    let recovering = run_parallel(&ds.engine, &ds.examples, &recovering_cfg(3)).unwrap();
    assert_eq!(decisions(&legacy), decisions(&recovering));
    assert_eq!(legacy.epochs, recovering.epochs);
    assert_eq!(legacy.set_aside, recovering.set_aside);
}

/// Under the default `Abort` policy the config additions are inert: the
/// exact legacy code path runs and produces the same bytes and clocks.
#[test]
fn abort_policy_is_untouched_by_the_recovery_seam() {
    let ds = p2mdie_datasets::trains(12, 5);
    let base = ParallelConfig::new(2, Width::Limit(10), 5);
    let a = run_parallel(&ds.engine, &ds.examples, &base).unwrap();
    let b = run_parallel(
        &ds.engine,
        &ds.examples,
        &base.clone().with_recovery(RecoveryPolicy::Abort),
    )
    .unwrap();
    assert_eq!(a.theory, b.theory);
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.total_messages, b.total_messages);
    assert!((a.vtime - b.vtime).abs() < 1e-12);
    assert_eq!(b.recovery_bytes, 0);
    assert_eq!(b.rank_losses, Vec::<u32>::new());
}

/// PR 6 follow-up, pinned: a **second** rank death while the first
/// recovery is still quiescing (or draining) exceeds the protocol and must
/// surface as a clean rank-tagged [`ClusterError`] — never a hang and
/// never a partial theory. Sweeping rank 2's kill point across the window
/// around rank 1's death lands the second fault before, inside, and after
/// the quiesce, so every phase of the recovery is exercised: each run
/// either fully heals (decisions identical to the fault-free run) or fails
/// with an error that names a rank. The loss budget is 2, so the failures
/// observed here are protocol-window failures, not budget exhaustion.
#[test]
fn second_death_during_quiesce_fails_cleanly_or_heals_completely() {
    let ds = p2mdie_datasets::trains(12, 5);
    let cfg2 = |losses: u32| {
        ParallelConfig::new(3, Width::Limit(10), 5).with_recovery(RecoveryPolicy::Repartition {
            max_rank_losses: losses,
        })
    };
    let fault_free = run_parallel(&ds.engine, &ds.examples, &cfg2(2)).unwrap();
    assert!(!fault_free.stalled);
    let baseline = decisions(&fault_free);

    let (mut healed, mut failed) = (0u32, 0u32);
    for second_kill in 1..=14u64 {
        let cfg = cfg2(2)
            .with_chaos(1, ChaosConfig::new(7).kill_after_sends(4))
            .with_chaos(2, ChaosConfig::new(13).kill_after_sends(second_kill));
        match run_parallel(&ds.engine, &ds.examples, &cfg) {
            Ok(rep) => {
                healed += 1;
                assert!(!rep.stalled, "kill@{second_kill}: healed run stalled");
                assert_eq!(
                    decisions(&rep),
                    baseline,
                    "kill@{second_kill}: a double recovery changed the theory"
                );
                // A kill point beyond rank 2's total sends leaves it alive
                // (single-loss run); otherwise both deaths are recorded.
                assert!(
                    !rep.rank_losses.is_empty(),
                    "kill@{second_kill}: a healed run records its losses"
                );
            }
            Err(err) => {
                failed += 1;
                let msg = format!("{err}");
                assert!(
                    msg.contains("rank"),
                    "kill@{second_kill}: error must name a rank, got: {msg}"
                );
            }
        }
    }
    // The sweep must actually cross the quiesce window: some kill points
    // recover twice, some land inside the protocol's blind spot and fail.
    assert!(healed > 0, "no kill point double-recovered");
    assert!(failed > 0, "no kill point hit the quiesce/drain window");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever single rank dies, and whenever it dies, the learned theory
    /// never changes. (A kill point beyond the rank's total sends simply
    /// degenerates to the fault-free run, which must also match.)
    #[test]
    fn any_single_rank_kill_preserves_the_theory(
        rank in 1usize..=3,
        kill_after in 1u64..40,
        chaos_seed in 0u64..1000,
    ) {
        let ds = p2mdie_datasets::trains(12, 5);
        let fault_free = run_parallel(&ds.engine, &ds.examples, &recovering_cfg(3)).unwrap();
        let cfg = recovering_cfg(3)
            .with_chaos(rank, ChaosConfig::new(chaos_seed).kill_after_sends(kill_after));
        let healed = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();
        prop_assert!(!healed.stalled);
        prop_assert_eq!(decisions(&fault_free), decisions(&healed));
    }
}
