//! Multi-job smoke test of the resident service over a **real** TCP mesh:
//! a master (this test) plus real `p2mdie-worker` OS processes that stay
//! resident between jobs. Pins the tentpole's deployment shape end to end:
//! the KB snapshot ships once, several jobs of different kinds are
//! multiplexed over the standing worker processes, each result matches the
//! corresponding fresh-mesh run, and the workers exit cleanly at shutdown
//! (no idle-disconnect exits, no reaping timeouts).

use p2mdie_core::driver::{run_parallel, ParallelConfig};
use p2mdie_core::job::{JobSpec, JobState};
use p2mdie_core::remote::TcpConfig;
use p2mdie_core::scheduler::{Service, ServiceConfig};
use p2mdie_ilp::settings::Width;
use std::sync::mpsc;
use std::time::Duration;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_p2mdie-worker");
const WATCHDOG: Duration = Duration::from_secs(120);

fn tcp_config() -> TcpConfig {
    TcpConfig::with_worker_bin(WORKER_BIN)
}

/// Runs `f` on a watchdog thread; a hang fails the test instead of
/// stalling the suite.
fn bounded<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(r) => {
            let _ = handle.join();
            r
        }
        Err(_) => panic!("multi-process run exceeded the {WATCHDOG:?} watchdog (hang?)"),
    }
}

/// Three jobs — two learning runs with different partition seeds and a
/// coverage query — multiplexed over two resident worker processes.
#[test]
fn multi_job_service_over_real_worker_processes() {
    let ds = p2mdie_datasets::trains(12, 5);
    let width = Width::Limit(10);

    // Fresh-mesh references (in-process; the TCP run must match bit for
    // bit in theory and steps, as pinned for one-shots by tcp_cluster.rs).
    let solo3 = run_parallel(&ds.engine, &ds.examples, &ParallelConfig::new(2, width, 3)).unwrap();
    let solo5 = run_parallel(&ds.engine, &ds.examples, &ParallelConfig::new(2, width, 5)).unwrap();
    let rules = solo5.clauses();
    assert!(!rules.is_empty());

    let engine = ds.engine.clone();
    let examples = ds.examples.clone();
    let (learn3, learn5, query, report) = bounded(move || {
        let service = Service::new_tcp(&engine, ServiceConfig::new(2), &tcp_config());
        let h3 = service
            .submit(
                JobSpec::learn(examples.clone())
                    .with_seed(3)
                    .with_width(width),
            )
            .unwrap();
        let h5 = service
            .submit(
                JobSpec::learn(examples.clone())
                    .with_seed(5)
                    .with_width(width),
            )
            .unwrap();
        let hq = service
            .submit(JobSpec::coverage(examples.clone(), rules))
            .unwrap();
        let learn3 = h3.wait();
        let learn5 = h5.wait();
        let query = hq.wait();
        let report = service.shutdown().unwrap();
        (learn3, learn5, query, report)
    });

    assert_eq!(learn3.state, JobState::Done, "learn#3: {:?}", learn3.error);
    assert_eq!(learn5.state, JobState::Done, "learn#5: {:?}", learn5.error);
    assert_eq!(query.state, JobState::Done, "query: {:?}", query.error);

    assert_eq!(
        learn3.learned().theory,
        solo3.theory,
        "resident TCP learn (seed 3) drifted from the fresh-mesh run"
    );
    assert_eq!(learn3.accounting.worker_steps, solo3.worker_steps);
    assert_eq!(
        learn5.learned().theory,
        solo5.theory,
        "resident TCP learn (seed 5) drifted from the fresh-mesh run"
    );
    assert_eq!(learn5.accounting.worker_steps, solo5.worker_steps);

    for (rule, counts) in solo5.clauses().iter().zip(query.coverage()) {
        let cov = ds.engine.evaluate(rule, &ds.examples, None, None);
        assert_eq!(
            (cov.pos_count(), cov.neg_count()),
            *counts,
            "TCP coverage query drifted from direct evaluation"
        );
    }

    assert_eq!(report.jobs_run, 3);
    assert_eq!(report.dropped_sends, 0, "nothing may be lost on the wire");
    // One KB snapshot amortized over three jobs: the per-job byte deltas
    // cannot account for all mesh traffic.
    let job_bytes = learn3.accounting.bytes + learn5.accounting.bytes + query.accounting.bytes;
    assert!(
        report.total_bytes > job_bytes,
        "the one-time KB ship must live outside the per-job deltas ({} vs {job_bytes})",
        report.total_bytes
    );
}
