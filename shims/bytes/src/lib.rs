//! Offline shim for `bytes`: a cheaply-cloneable immutable byte buffer
//! (`Bytes`), a growable builder (`BytesMut`), and the little-endian
//! `Buf`/`BufMut` accessors the wire codec uses.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Cheaply-cloneable immutable bytes: a shared backing buffer plus a view
/// window. Cloning and slicing are O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// O(1) sub-view; panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte builder; `freeze` converts into an immutable [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable buffer without copying.
    pub fn freeze(self) -> Bytes {
        self.vec.into()
    }
}

/// Read cursor over a byte source (implemented for [`Bytes`]).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies `n` bytes out into an owned buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out: Bytes = self.chunk()[..n].to_vec().into();
        self.advance(n);
        out
    }

    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write cursor over a byte sink (implemented for [`BytesMut`]).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut m = BytesMut::new();
        m.put_u32_le(7);
        m.put_u8(9);
        let mut b = m.freeze();
        assert_eq!(b.len(), 5);
        let s = b.slice(..4);
        assert_eq!(s.len(), 4);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u8(), 9);
        assert!(!b.has_remaining());
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b: Bytes = vec![1, 2, 3, 4].into();
        let head = b.copy_to_bytes(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.remaining(), 2);
    }
}
