//! Offline shim for `crossbeam`: the workspace only uses unbounded MPSC
//! channels, which `std::sync::mpsc` provides with the same semantics.

/// Unbounded channels with the `crossbeam_channel` API shape.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Clonable sending half.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}
