//! Offline shim for `criterion`: wall-clock micro-benchmarking with the
//! `Criterion`/`criterion_group!`/`criterion_main!` surface. Each bench is
//! warmed up, then measured over a fixed number of samples; mean and
//! best-sample times are printed in a criterion-like format and appended as
//! JSON lines to `target/shim-criterion.jsonl` for tooling.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    min_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            min_sample_time: Duration::from_millis(20),
        }
    }
}

/// One measured sample set.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time, nanoseconds.
    pub best_ns: f64,
    /// Iterations per sample used.
    pub iters: u64,
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn record(id: &str, e: Estimate) {
    println!(
        "{id:<48} time: [{} .. {}]",
        fmt_time(e.best_ns),
        fmt_time(e.mean_ns)
    );
    let line = format!(
        "{{\"id\":\"{id}\",\"mean_ns\":{:.1},\"best_ns\":{:.1},\"iters\":{}}}\n",
        e.mean_ns, e.best_ns, e.iters
    );
    let path = std::path::Path::new("target");
    if path.is_dir() {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.join("shim-criterion.jsonl"))
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// Runs `routine` through warmup + sampling and returns the estimate.
fn run_bench(
    sample_size: usize,
    min_sample_time: Duration,
    routine: &mut dyn FnMut() -> Duration,
) -> Estimate {
    // Warmup + calibration: how many iterations fill one sample window?
    let mut one = routine();
    if one.is_zero() {
        one = Duration::from_nanos(1);
    }
    let iters = (min_sample_time.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut sample = Duration::ZERO;
        for _ in 0..iters {
            sample += routine();
        }
        total += sample;
        best = best.min(sample);
    }
    let denom = (sample_size as u64 * iters) as f64;
    Estimate {
        mean_ns: total.as_nanos() as f64 / denom,
        best_ns: best.as_nanos() as f64 / iters as f64,
        iters,
    }
}

impl Criterion {
    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut routine = || {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed
        };
        let e = run_bench(self.sample_size, self.min_sample_time, &mut routine);
        record(&id, e);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// Timing handle passed to bench closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut routine = || {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed
        };
        let e = run_bench(samples, self.parent.min_sample_time, &mut routine);
        record(&full, e);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench entry point running each function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            min_sample_time: Duration::from_micros(50),
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
