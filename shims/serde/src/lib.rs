//! Offline shim for `serde`: trait names + no-op derives, enough for code
//! that derives `Serialize`/`Deserialize` without ever serializing through
//! serde. See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
