//! Offline shim for `proptest`: deterministic random testing with the
//! strategy surface this workspace uses (ranges, tuples, `collection::vec`,
//! `sample::select`, `prop_map`, `prop_recursive`, `prop_oneof!`). Unlike
//! real proptest there is no shrinking — a failing case prints its seed and
//! case number instead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::rc::Rc;

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration (`ProptestConfig` in real proptest).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 48 }
    }
}

impl Config {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// The deterministic generator driving all strategies.
pub type TestRng = StdRng;

/// Builds the per-test RNG. Seeded from the test name so every test gets an
/// independent but fully reproducible stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. All combinators return [`BoxedStrategy`], which is
/// cheaply cloneable.
pub trait Strategy: Clone + 'static {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| f(inner.sample(rng)))
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| inner.sample(rng))
    }

    /// Recursive strategy: up to `depth` nested applications of `branch`
    /// around this leaf strategy (the `_size`/`_items` tuning knobs of real
    /// proptest are accepted and ignored).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _size: u32,
        _items: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self::Value: 'static,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            let l = leaf.clone();
            // Half leaves, half deeper nests: keeps expected size finite.
            current = BoxedStrategy::new(move |rng| {
                if rng.random_bool(0.5) {
                    l.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            });
        }
        current
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always-`value` strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F) }

/// Uniform choice among equally-typed strategies (backs `prop_oneof!`).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    BoxedStrategy::new(move |rng| {
        let i = rng.random_range(0..options.len());
        options[i].sample(rng)
    })
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::new(|rng| rng.random())
    }
}
impl Arbitrary for u8 {
    fn arbitrary() -> BoxedStrategy<u8> {
        BoxedStrategy::new(|rng| rng.random())
    }
}
impl Arbitrary for u32 {
    fn arbitrary() -> BoxedStrategy<u32> {
        BoxedStrategy::new(|rng| rng.random())
    }
}
impl Arbitrary for u64 {
    fn arbitrary() -> BoxedStrategy<u64> {
        BoxedStrategy::new(|rng| rng.random())
    }
}
impl Arbitrary for i64 {
    fn arbitrary() -> BoxedStrategy<i64> {
        BoxedStrategy::new(|rng| rng.random())
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{BoxedStrategy, Strategy};

    /// Length specification: an exact count or a half-open range.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Vectors of `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng| {
            use rand::RngExt;
            let len = rng.random_range(size.lo..size.hi);
            (0..len).map(|_| elem.sample(rng)).collect()
        })
    }
}

/// Sampling strategies.
pub mod sample {
    use super::BoxedStrategy;

    /// Uniformly selects one of `options` (must be non-empty).
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        BoxedStrategy::new(move |rng| {
            use rand::RngExt;
            options[rng.random_range(0..options.len())].clone()
        })
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Config as ProptestConfig, Just, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a proptest body, failing the case (not panicking inline).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines `#[test]` functions over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::Config = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1usize..10, v in crate::collection::vec(0i64..5, 2..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn oneof_map_and_select(v in prop_oneof![
            (0u32..3).prop_map(|x| x * 10),
            crate::sample::select(vec![100u32, 200]),
        ]) {
            prop_assert!(v % 10 == 0);
        }
    }

    #[test]
    fn deterministic_per_test_rng() {
        let mut a = crate::rng_for("t");
        let mut b = crate::rng_for("t");
        use rand::RngExt;
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}
