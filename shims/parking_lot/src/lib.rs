//! Offline shim for `parking_lot`: std-backed locks with the non-poisoning
//! `parking_lot` API (a poisoned std lock unwraps — a panic while holding
//! the lock is already fatal to this workspace's invariants).

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}
