//! Offline shim for `serde_derive`: the workspace only uses
//! `#[derive(serde::Serialize, serde::Deserialize)]` as annotations — no
//! code path actually serializes through serde (the wire codec in
//! `p2mdie-cluster` is hand-rolled). The derives therefore expand to
//! nothing; the matching traits in the `serde` shim are blanket-implemented.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
