//! Offline shim for `rand`: a deterministic SplitMix64 generator behind the
//! `StdRng`/`SeedableRng`/`RngExt`/`SliceRandom` surface this workspace
//! uses. Dataset generation and partitioning only need a seeded, stable,
//! well-mixed stream — reproducibility matters more than cryptographic or
//! statistical perfection here.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// Deterministic standard generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014), public domain reference.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Random: Sized {
    /// Samples a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Random for u8 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`]. The element type is a
/// trait parameter (as in real `rand`) so integer literals in a range
/// expression infer from the call site.
pub trait SampleRange<T> {
    /// Samples uniformly from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Convenience sampling methods (the `rand` 0.9 `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// Uniform value of an inferable type.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform value in a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: older call sites spell the extension trait `Rng`.
pub use RngExt as Rng;

/// Slice utilities.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3..9);
            assert!((3..9).contains(&v));
            let w = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
    }
}
