//! Real multi-process cluster run: the same p²-mdie induction, once as the
//! in-process simulation and once as master + real `p2mdie-worker` OS
//! processes over a localhost TCP mesh — and a proof that the two agree
//! bit for bit.
//!
//! ```sh
//! cargo build -p p2mdie-core --bin p2mdie-worker
//! cargo run --release --example cluster_tcp                # in-process only
//! cargo run --release --example cluster_tcp -- --transport tcp
//! ```

use p2mdie::core::driver::{run_parallel, ParallelConfig, TransportKind};
use p2mdie::core::remote::TcpConfig;
use p2mdie::ilp::settings::Width;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tcp = match args.as_slice() {
        [] => false,
        [flag, value] if flag == "--transport" && value == "tcp" => true,
        [flag, value] if flag == "--transport" && value == "inproc" => false,
        _ => {
            eprintln!("usage: cluster_tcp [--transport tcp|inproc]");
            std::process::exit(1);
        }
    };

    let ds = p2mdie::datasets::trains(20, 5);
    let workers = 2;
    // A TCP run always ships the compiled KB (worker processes inherit no
    // memory); enable it in-process too so the two runs are like for like.
    let cfg = ParallelConfig::new(workers, Width::Limit(10), 5).with_kb_shipping();

    println!(
        "dataset: {} ({} pos / {} neg), p = {workers}, model = Beowulf-2005\n",
        ds.name,
        ds.examples.num_pos(),
        ds.examples.num_neg()
    );

    let inproc = run_parallel(&ds.engine, &ds.examples, &cfg).expect("in-process run");
    println!(
        "in-process threads:   {} rules, {} epochs, T(p) = {:.1} virtual s, {:.3} MB",
        inproc.theory.len(),
        inproc.epochs,
        inproc.vtime,
        inproc.megabytes()
    );

    if !tcp {
        println!("\n(pass `--transport tcp` to repeat this run with real worker processes)");
        return;
    }

    let tcp_cfg = match p2mdie::core::remote::default_worker_bin() {
        Some(bin) => TcpConfig::with_worker_bin(bin),
        None => {
            eprintln!(
                "cannot find the p2mdie-worker binary — build it first:\n  \
                 cargo build -p p2mdie-core --bin p2mdie-worker\n\
                 (or set P2MDIE_WORKER_BIN)"
            );
            std::process::exit(1);
        }
    };
    let cfg_tcp = cfg.clone().with_transport(TransportKind::Tcp(tcp_cfg));
    let remote = run_parallel(&ds.engine, &ds.examples, &cfg_tcp).expect("TCP run");
    println!(
        "real OS processes:    {} rules, {} epochs, T(p) = {:.1} virtual s, {:.3} MB \
         (+bootstrap), dropped sends: {}",
        remote.theory.len(),
        remote.epochs,
        remote.vtime,
        remote.megabytes(),
        remote.dropped_sends
    );

    assert_eq!(
        inproc.theory, remote.theory,
        "multi-process induction must be bit-identical"
    );
    assert_eq!(inproc.worker_steps, remote.worker_steps);
    println!(
        "\nidentical theory, coverage counts, and per-rank inference steps — \
         {} workers ran as real processes over {} virtual-time-carrying TCP frames.",
        workers, remote.total_messages
    );

    println!("\ninduced theory:");
    for rule in &remote.theory {
        println!(
            "  [epoch {}, origin w{}] ({}+/{}-)  {}",
            rule.epoch,
            rule.origin,
            rule.pos,
            rule.neg,
            rule.clause.display(&ds.syms)
        );
    }
}
