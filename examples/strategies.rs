//! The strategy seam, side by side: the same learning task solved under
//! all three parallelization strategies the runtime hosts —
//!
//! * `data-pipeline` — the paper's §4 protocol: partitioned examples,
//!   pipelined rule searches, globally-scored rule bag;
//! * `search-partition` — hypothesis-parallel: every rank holds the full
//!   example set and searches a disjoint slice of the refinement lattice;
//! * `constraint-driven` — independent searches that broadcast pruning
//!   constraints (dead generalizations) between rounds, cutting each
//!   other's lattices.
//!
//! The run ends with the eval crate's cross-strategy comparison table
//! (Table 7) over two datasets.
//!
//! ```sh
//! cargo run --release --example strategies
//! ```

use p2mdie::cluster::CostModel;
use p2mdie::core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie::core::Strategy;
use p2mdie::eval::sweep::{run_sweep, SweepConfig};
use p2mdie::eval::tables;
use p2mdie::ilp::settings::Width;

fn main() {
    let ds = p2mdie::datasets::trains(16, 5);
    println!(
        "dataset: {} — {} eastbound / {} westbound trains\n",
        ds.name,
        ds.examples.num_pos(),
        ds.examples.num_neg()
    );

    let seq = run_sequential_timed(&ds.engine, &ds.examples, &CostModel::beowulf_2005());
    println!(
        "sequential MDIE baseline:  T = {:>7.1} virtual s  ({} epochs, {} rules)",
        seq.vtime,
        seq.epochs,
        seq.theory.len()
    );

    for strategy in Strategy::ALL {
        let cfg = ParallelConfig::new(3, Width::Limit(10), 5).with_strategy(strategy);
        let rep = run_parallel(&ds.engine, &ds.examples, &cfg).expect("strategy run");
        println!(
            "{:<18} p = 3:  T = {:>7.1} virtual s  speedup {:>5.2}  \
             ({} epochs, {} rules, {:.3} MB total, {:.3} MB constraints)",
            strategy.label(),
            rep.vtime,
            seq.vtime / rep.vtime,
            rep.epochs,
            rep.theory.len(),
            rep.megabytes(),
            rep.constraint_bytes as f64 / 1.0e6,
        );
    }

    // The eval crate's strategy axis: all three strategies on two
    // datasets, cross-validated, rendered as Table 7.
    println!("\nrunning the cross-strategy sweep (2 datasets, 2 folds)...\n");
    let sweep = SweepConfig {
        datasets: vec!["carcinogenesis".into(), "mesh".into()],
        scale: 0.12,
        seed: 2005,
        folds: 2,
        procs: vec![2],
        widths: vec![Width::Limit(10)],
        model: CostModel::beowulf_2005(),
        strategies: Strategy::ALL.to_vec(),
        verbose: false,
    };
    let res = run_sweep(&sweep);
    println!("{}", tables::table7(&res));
    println!(
        "(strategy cells run at width {} with p = {}; times are virtual \
         Beowulf-2005 seconds)",
        sweep.widths[0].label(),
        sweep.procs.last().unwrap()
    );
}
