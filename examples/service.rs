//! ILP as a service: one resident p²-mdie mesh serving several jobs.
//!
//! A [`Service`] builds the cluster once — workers adopt the compiled KB
//! snapshot at construction and then stay resident — and every submission
//! after that ships only its job description (examples, settings, rules to
//! score). Here two coverage queries and a full learning run are submitted
//! concurrently over one standing two-worker mesh; the mesh multiplexes
//! them back to back, each on a pristine clone of the resident KB, and the
//! service report shows the one-time KB ship amortized across all three.
//!
//! ```sh
//! cargo run --release --example service
//! ```

use p2mdie::core::driver::{run_parallel, ParallelConfig};
use p2mdie::core::job::{JobSpec, JobState};
use p2mdie::core::scheduler::{Service, ServiceConfig};
use p2mdie::ilp::settings::Width;

fn main() {
    let ds = p2mdie::datasets::trains(20, 5);
    let workers = 2;
    let width = Width::Limit(10);

    // Rules for the coverage queries: what a fresh one-shot run learns.
    // (Also the reference the service's learning job must reproduce.)
    let reference = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(workers, width, 5),
    )
    .expect("one-shot reference run");
    let rules = reference.clauses();

    println!(
        "dataset: {} ({} pos / {} neg), resident mesh: {workers} workers, Beowulf-2005\n",
        ds.name,
        ds.examples.num_pos(),
        ds.examples.num_neg()
    );

    // Build the mesh once. The compiled KB ships to every worker here and
    // never again.
    let service = Service::new(&ds.engine, ServiceConfig::new(workers));

    // Submit all three jobs up front: the handles return immediately and
    // the scheduler multiplexes the queue over the standing workers.
    let full_theory = service
        .submit(JobSpec::coverage(ds.examples.clone(), rules.clone()))
        .expect("submit coverage #1");
    let first_rule = service
        .submit(JobSpec::coverage(
            ds.examples.clone(),
            vec![rules[0].clone()],
        ))
        .expect("submit coverage #2");
    let learn = service
        .submit(
            JobSpec::learn(ds.examples.clone())
                .with_seed(5)
                .with_width(width),
        )
        .expect("submit learn");
    println!(
        "submitted: {} (coverage, {} rules), {} (coverage, 1 rule), {} (learning run)\n",
        full_theory.id(),
        rules.len(),
        first_rule.id(),
        learn.id()
    );

    // Coverage query #1: global (pos, neg) counts for the whole theory.
    let outcome = full_theory.wait();
    assert_eq!(outcome.state, JobState::Done, "{:?}", outcome.error);
    println!(
        "{} — theory coverage over the full example set:",
        outcome.id
    );
    for (rule, (pos, neg)) in rules.iter().zip(outcome.coverage()) {
        println!("  ({pos:>3}+/{neg:>2}-)  {}", rule.display(&ds.syms));
    }
    println!(
        "  [{} B / {} msgs / {:.3} s virtual]\n",
        outcome.accounting.bytes, outcome.accounting.messages, outcome.accounting.vtime
    );

    // Coverage query #2: just the first rule.
    let outcome = first_rule.wait();
    assert_eq!(outcome.state, JobState::Done, "{:?}", outcome.error);
    let (pos, neg) = outcome.coverage()[0];
    println!(
        "{} — first rule alone covers {pos}+/{neg}-  [{} B / {} msgs]\n",
        outcome.id, outcome.accounting.bytes, outcome.accounting.messages
    );

    // The learning run: a complete p²-mdie induction as one queued job,
    // bit-identical to the one-shot entry point with the same seed.
    let outcome = learn.wait();
    assert_eq!(outcome.state, JobState::Done, "{:?}", outcome.error);
    let learned = outcome.learned();
    println!(
        "{} — learned theory ({} epochs):",
        outcome.id, learned.epochs
    );
    for rule in &learned.theory {
        println!(
            "  [epoch {}, origin w{}] ({}+/{}-)  {}",
            rule.epoch,
            rule.origin,
            rule.pos,
            rule.neg,
            rule.clause.display(&ds.syms)
        );
    }
    assert_eq!(
        learned.theory, reference.theory,
        "a service learning job must match the one-shot run bit for bit"
    );
    println!("  identical to the fresh-mesh one-shot run with the same seed\n");

    let report = service.shutdown().expect("clean shutdown");
    let job_bytes: u64 = report.total_bytes;
    println!(
        "service lifetime: {} jobs over one mesh — {} B / {} msgs total, \
         master vtime {:.3} s, {} dropped sends",
        report.jobs_run,
        job_bytes,
        report.total_messages,
        report.master_vtime,
        report.dropped_sends
    );
}
