//! Michalski's trains: the classic ILP teaching problem, solved with the
//! raw engine API (saturate → search → inspect) to show what happens under
//! the covering loop's hood.
//!
//! ```sh
//! cargo run --release --example trains
//! ```

fn main() {
    let ds = p2mdie::datasets::trains(10, 3);
    println!(
        "dataset: {} — {} eastbound / {} westbound trains",
        ds.name,
        ds.examples.num_pos(),
        ds.examples.num_neg()
    );

    // Step 1: saturate the first eastbound train into its bottom clause.
    let seed = &ds.examples.pos[0];
    println!("\nseed example: {}", seed.display(&ds.syms));
    let bottom = ds
        .engine
        .saturate(seed)
        .expect("seed matches the head mode");
    println!("bottom clause ⊥e has {} body literals:", bottom.body_len());
    for (i, bl) in bottom.lits.iter().enumerate().take(12) {
        println!(
            "  [{i:>2}, depth {}] {}",
            bl.depth,
            bl.lit.display(&ds.syms)
        );
    }
    if bottom.body_len() > 12 {
        println!("  ... and {} more", bottom.body_len() - 12);
    }

    // Step 2: breadth-first search through ⊥e's subset lattice.
    let out = ds.engine.search(&bottom, &ds.examples, None, &[]);
    println!(
        "\nsearch evaluated {} candidate rules ({} inference steps), {} good:",
        out.nodes,
        out.steps,
        out.good.len()
    );
    for rule in out.good.iter().take(5) {
        println!(
            "  score {:>3}  [{} pos / {} neg]  {}",
            rule.score,
            rule.pos,
            rule.neg,
            rule.shape.to_clause(&bottom).display(&ds.syms)
        );
    }

    // Step 3: the full covering loop.
    let run = ds.engine.run_sequential(&ds.examples);
    println!("\nfinal theory ({} epochs):", run.epochs);
    for rule in &run.theory {
        println!("  {}", rule.clause.display(&ds.syms));
    }
}
