//! Finite-element mesh design: the paper's mechanical-engineering workload
//! and its communication stress test.
//!
//! The mesh problem produces very large rule bags ("some thousand rules at
//! the end of one pipeline", §5.3), which is exactly why the paper bounds
//! the pipeline width. This example runs the same configuration twice —
//! unlimited width vs W = 10 — and shows the communication and time gap.
//!
//! ```sh
//! cargo run --release --example mesh_design
//! ```

use p2mdie::core::driver::{run_parallel, ParallelConfig};
use p2mdie::core::report::ParallelReport;
use p2mdie::ilp::settings::Width;

fn show(label: &str, rep: &ParallelReport) {
    println!(
        "{label:<10} T(4) = {:>8.1} virtual s | {:>8.3} MB, {:>6} msgs | {:>3} epochs, {:>3} rules",
        rep.vtime,
        rep.megabytes(),
        rep.total_messages,
        rep.epochs,
        rep.theory.len()
    );
}

fn main() {
    let ds = p2mdie::datasets::mesh(0.15, 11);
    println!(
        "dataset: {} — {} edges to dimension ({} pos / {} neg examples)\n",
        ds.name,
        ds.examples.num_pos(),
        ds.examples.num_pos(),
        ds.examples.num_neg()
    );

    let nolimit = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(4, Width::Unlimited, 11),
    )
    .expect("cluster run");
    show("nolimit", &nolimit);

    let width10 = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(4, Width::Limit(10), 11),
    )
    .expect("cluster run");
    show("width 10", &width10);

    println!(
        "\nbounding the width cuts communication {:.1}x and time {:.1}x \
         (the paper's Table 4 effect)",
        nolimit.megabytes() / width10.megabytes().max(1e-9),
        nolimit.vtime / width10.vtime
    );

    println!("\nsample rules (width 10 run):");
    for rule in width10.theory.iter().take(5) {
        println!(
            "  {}  [{} pos / {} neg]",
            rule.clause.display(&ds.syms),
            rule.pos,
            rule.neg
        );
    }
}
