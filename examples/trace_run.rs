//! Flight recorder: trace a whole learning run and inspect the timeline.
//!
//! Starts an in-process trace session, runs a 3-worker p²-mdie learning
//! run (with sampling of the prover hot counters on), and writes the
//! merged multi-rank timeline in two formats:
//!
//! * `trace_run.chrome.json` — Chrome `trace_event` JSON; open it in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` to see
//!   the master's `epoch` spans over the workers' pipeline `stage` spans,
//!   with every `send`/`recv` on the virtual-time axis;
//! * stdout — the span tree, a Prometheus-style metrics dump, and the
//!   prover hot counters.
//!
//! Everything is ordered by **virtual time**, so the same seed produces
//! the same timeline on every machine — the trace is an artifact of the
//! algorithm, not of the scheduler.
//!
//! ```sh
//! cargo run --release --example trace_run
//! ```

use p2mdie::core::driver::{run_parallel, ParallelConfig};
use p2mdie::ilp::settings::Width;
use p2mdie::obs::metrics::hot;
use p2mdie::obs::trace::{self, TraceConfig};
use p2mdie::obs::{validate_chrome, MetricsSnapshot};

fn main() {
    let ds = p2mdie::datasets::trains(20, 5);
    let workers = 3;

    // Arm the recorder: one process-global session buffers every rank's
    // spans and events (per-rank rings, drained by a writer thread), and
    // the prover's hot counters start sampling.
    assert!(
        trace::start(TraceConfig::default()),
        "recorder armed twice?"
    );
    hot::reset();
    hot::enable();

    let report = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(workers, Width::Limit(10), 5),
    )
    .expect("learning run");

    hot::disable();
    let (trace, summary) = trace::finish().expect("session was active");

    println!(
        "learned {} rules in {} epochs over {workers} workers, T = {:.2} virtual s",
        report.theory.len(),
        report.epochs,
        report.vtime
    );
    println!(
        "recorded {} trace events ({} ring overflows)\n",
        trace.events.len(),
        summary.ring_overflows
    );

    // The merged timeline as a span tree (virtual-time ordered).
    println!("span tree:\n{}", trace.span_tree());

    // Chrome trace_event export — loadable in Perfetto.
    let chrome = trace.chrome_json();
    validate_chrome(&chrome).expect("well-formed nesting");
    std::fs::write("trace_run.chrome.json", &chrome).expect("write chrome trace");
    println!("wrote trace_run.chrome.json ({} bytes)", chrome.len());

    // The prover hot counters, as a Prometheus exposition.
    let snapshot = MetricsSnapshot::from_entries(hot::entries());
    println!("\nprover hot counters:\n{}", snapshot.prometheus());
}
