//! Drug design: the paper's motivating molecular-biology workload.
//!
//! Runs p²-mdie on the pyrimidines-shaped QSAR problem (rank drug activity
//! from structural comparisons) with 5-fold cross-validation, reporting
//! per-fold accuracy exactly as the paper's Table 6 does.
//!
//! ```sh
//! cargo run --release --example drug_design
//! ```

use p2mdie::core::driver::{run_parallel, ParallelConfig};
use p2mdie::eval::{mean, score_theory, stddev, stratified_folds};
use p2mdie::ilp::settings::Width;

fn main() {
    let ds = p2mdie::datasets::pyrimidines(0.25, 7);
    println!(
        "dataset: {} — {} ordered drug pairs ({} pos / {} neg)",
        ds.name,
        ds.examples.len(),
        ds.examples.num_pos(),
        ds.examples.num_neg()
    );

    let folds = stratified_folds(&ds.examples, 5, 7);
    let mut accs = Vec::new();
    for (i, fold) in folds.iter().enumerate() {
        let cfg = ParallelConfig::new(4, Width::Limit(10), 7 + i as u64);
        let rep = run_parallel(&ds.engine, &fold.train, &cfg).expect("cluster run");
        let conf = score_theory(&ds.engine, &rep.clauses(), &fold.test);
        let acc = conf.accuracy_pct();
        println!(
            "fold {i}: {} rules, {} epochs, T(4) = {:>7.1} virtual s, test accuracy {acc:.2}% \
             (tp {} fp {} tn {} fn {})",
            rep.theory.len(),
            rep.epochs,
            rep.vtime,
            conf.tp,
            conf.fp,
            conf.tn,
            conf.fn_
        );
        accs.push(acc);

        if i == 0 {
            println!("  sample of the induced ordering theory:");
            for rule in rep.theory.iter().take(4) {
                println!("    {}", rule.clause.display(&ds.syms));
            }
        }
    }
    println!(
        "\n5-fold accuracy: {:.2}% ({:.2})",
        mean(&accs),
        stddev(&accs)
    );
}
