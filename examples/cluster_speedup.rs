//! Speedup curve: T(1)/T(p) for p = 1, 2, 4, 8 on the carcinogenesis-shaped
//! dataset — the experiment behind the paper's Tables 2 and 3, on one
//! dataset, in one command.
//!
//! ```sh
//! cargo run --release --example cluster_speedup
//! ```

use p2mdie::cluster::CostModel;
use p2mdie::core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie::ilp::settings::Width;

fn main() {
    let ds = p2mdie::datasets::carcinogenesis(0.5, 2005);
    println!(
        "dataset: {} ({} pos / {} neg)\n",
        ds.name,
        ds.examples.num_pos(),
        ds.examples.num_neg()
    );

    let seq = run_sequential_timed(&ds.engine, &ds.examples, &CostModel::beowulf_2005());
    println!(
        "p = 1 (sequential MDIE):   T = {:>8.1} virtual s   ({} epochs)",
        seq.vtime, seq.epochs
    );

    for width in [Width::Unlimited, Width::Limit(10)] {
        println!("\npipeline width = {}:", width.label());
        for p in [2, 4, 8] {
            let rep = run_parallel(
                &ds.engine,
                &ds.examples,
                &ParallelConfig::new(p, width, 2005),
            )
            .expect("cluster run");
            let speedup = seq.vtime / rep.vtime;
            let bar = "#".repeat((speedup * 4.0).round() as usize);
            println!(
                "  p = {p}: T = {:>8.1} virtual s  speedup {speedup:>5.2} {bar}  \
                 ({} epochs, {:.2} MB)",
                rep.vtime,
                rep.epochs,
                rep.megabytes()
            );
        }
    }
    println!(
        "\n(virtual Beowulf-2005 cost model: {} s/step, {} µs latency, {} MB/s links)",
        CostModel::beowulf_2005().sec_per_step,
        CostModel::beowulf_2005().latency * 1e6,
        CostModel::beowulf_2005().bytes_per_sec / 1e6
    );
}
