//! Quickstart: learn `daughter/2` from a family tree, sequentially and on
//! a 4-worker virtual cluster, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use p2mdie::cluster::CostModel;
use p2mdie::core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie::ilp::settings::Width;

fn main() {
    let ds = p2mdie::datasets::family(6, 42);
    println!(
        "dataset: {} — {} positive / {} negative examples, {} background facts",
        ds.name,
        ds.examples.num_pos(),
        ds.examples.num_neg(),
        ds.engine.kb.num_facts()
    );

    // Sequential MDIE (the paper's Figure 1).
    let seq = run_sequential_timed(&ds.engine, &ds.examples, &CostModel::beowulf_2005());
    println!(
        "\nsequential: {} epochs, T(1) = {:.2} virtual s",
        seq.epochs, seq.vtime
    );
    for clause in &seq.theory {
        println!("  {}", clause.display(&ds.syms));
    }

    // p²-mdie on 4 workers (the paper's Figure 5-7).
    let cfg = ParallelConfig::new(4, Width::Limit(10), 42);
    let par = run_parallel(&ds.engine, &ds.examples, &cfg).expect("cluster run");
    println!(
        "\np²-mdie (p = 4, W = 10): {} epochs, T(4) = {:.2} virtual s, {:.3} MB exchanged",
        par.epochs,
        par.vtime,
        par.megabytes()
    );
    for rule in &par.theory {
        println!(
            "  [epoch {:>2}] {}",
            rule.epoch,
            rule.clause.display(&ds.syms)
        );
    }
    println!("\nspeedup T(1)/T(4) = {:.2}", seq.vtime / par.vtime);

    // The same run with snapshot-based KB shipping: workers start with an
    // *empty* KB and adopt the master's compiled store from one
    // `Msg::KbSnapshot` transfer (the multi-process deployment shape) —
    // identical theory, the snapshot bytes now on the wire.
    let shipped = run_parallel(&ds.engine, &ds.examples, &cfg.clone().with_kb_shipping())
        .expect("cluster run (shipped KB)");
    assert_eq!(
        shipped.clauses(),
        par.clauses(),
        "snapshot-shipped workers must learn the identical theory"
    );
    println!(
        "with KB shipping: identical theory, {:.3} MB exchanged ({:.3} MB of compiled-KB snapshots)",
        shipped.megabytes(),
        (shipped.total_bytes - par.total_bytes) as f64 / 1.0e6
    );
}
