//! End-to-end integration tests: the full stack (datasets → ILP engine →
//! cluster → p²-mdie → evaluation) exercised through the public API.

use p2mdie::cluster::CostModel;
use p2mdie::core::driver::{run_parallel, run_sequential_timed, ParallelConfig};
use p2mdie::eval::{score_theory, stratified_folds};
use p2mdie::ilp::settings::Width;

/// On the noise-free trains problem, both the sequential baseline and
/// p²-mdie at several cluster sizes must induce complete, consistent
/// theories.
#[test]
fn trains_quality_parity_across_p() {
    let ds = p2mdie::datasets::trains(20, 5);
    let seq = run_sequential_timed(&ds.engine, &ds.examples, &CostModel::free());
    let seq_conf = score_theory(&ds.engine, &seq.theory, &ds.examples);
    assert_eq!(seq_conf.fp, 0, "sequential theory must be consistent");
    assert_eq!(seq_conf.fn_, 0, "sequential theory must be complete");

    for p in [1, 2, 3, 5] {
        let rep = run_parallel(
            &ds.engine,
            &ds.examples,
            &ParallelConfig::new(p, Width::Limit(10), 5),
        )
        .unwrap();
        assert!(!rep.stalled);
        let conf = score_theory(&ds.engine, &rep.clauses(), &ds.examples);
        assert_eq!(conf.fp, 0, "p={p}: parallel theory must be consistent");
        assert_eq!(conf.fn_, 0, "p={p}: parallel theory must be complete");
    }
}

/// Fixed seeds make whole cluster runs bit-for-bit reproducible: same
/// theory, same epochs, same traffic, same virtual time.
#[test]
fn full_runs_are_deterministic() {
    let ds = p2mdie::datasets::carcinogenesis(0.12, 9);
    let cfg = ParallelConfig::new(4, Width::Limit(10), 9);
    let a = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();
    let b = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();
    assert_eq!(a.clauses(), b.clauses());
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.total_messages, b.total_messages);
    assert!((a.vtime - b.vtime).abs() < 1e-12);
    assert_eq!(a.worker_steps, b.worker_steps);
}

/// The traffic matrix must be internally consistent: link sums equal the
/// grand totals reported on the run.
#[test]
fn traffic_accounting_is_consistent() {
    let ds = p2mdie::datasets::family(5, 3);
    let cfg = ParallelConfig::new(3, Width::Unlimited, 3);
    let rep = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();
    assert!(rep.total_bytes > 0);
    assert!(rep.total_messages > 0);
    assert!((rep.megabytes() - rep.total_bytes as f64 / 1e6).abs() < 1e-12);
    // Pipelines imply worker->worker traffic, the bag implies
    // master<->worker traffic; all must be present at p >= 2.
    assert!(
        rep.total_messages >= (3 * rep.epochs as u64),
        "at least one message per pipeline"
    );
}

/// More workers must not increase the epoch count (the paper's Table 5
/// trend: several rules are consumed per epoch, so epochs shrink).
#[test]
fn epochs_do_not_grow_with_p() {
    let ds = p2mdie::datasets::mesh(0.04, 11);
    let e2 = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(2, Width::Limit(10), 11),
    )
    .unwrap()
    .epochs;
    let e8 = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(8, Width::Limit(10), 11),
    )
    .unwrap()
    .epochs;
    assert!(e8 <= e2, "epochs at p=8 ({e8}) must not exceed p=2 ({e2})");
}

/// A zero-width pipeline forwards no rules at all; the run must still
/// terminate (every seed is eventually retired) with an empty theory.
#[test]
fn zero_width_pipeline_terminates_empty() {
    let ds = p2mdie::datasets::trains(10, 5);
    let rep = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(2, Width::Limit(0), 5),
    )
    .unwrap();
    assert!(rep.theory.is_empty());
    assert_eq!(
        rep.set_aside as usize,
        ds.examples.num_pos(),
        "every positive is set aside"
    );
    assert!(!rep.stalled);
}

/// More workers than positive examples: some partitions are empty and no
/// worker holds the `min_pos = 2` examples a locally-good rule needs, so
/// nothing can be learned — but the protocol's empty tokens keep the
/// schedule static and the run terminates cleanly (every seed retired).
/// This degenerate regime is inherent to p²-mdie's local goodness test;
/// the paper's datasets are always far larger than `p`.
#[test]
fn more_workers_than_examples_terminates_cleanly() {
    let ds = p2mdie::datasets::trains(8, 5); // 4 positive examples
    assert!(ds.examples.num_pos() < 6);
    let rep = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(6, Width::Limit(10), 1),
    )
    .unwrap();
    assert!(!rep.stalled);
    assert_eq!(
        rep.set_aside as usize + count_covered(&ds, &rep),
        ds.examples.num_pos()
    );

    // With enough examples per worker, the same cluster size learns fine.
    let ds = p2mdie::datasets::trains(60, 5); // 30 positive examples
    let rep = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(6, Width::Limit(10), 1),
    )
    .unwrap();
    let conf = score_theory(&ds.engine, &rep.clauses(), &ds.examples);
    assert_eq!(conf.fn_, 0, "all positives covered");
}

fn count_covered(
    ds: &p2mdie::datasets::Dataset,
    rep: &p2mdie::core::report::ParallelReport,
) -> usize {
    score_theory(&ds.engine, &rep.clauses(), &ds.examples).tp
}

/// Held-out accuracy of p²-mdie stays in the same band as the sequential
/// baseline (the paper's Table 6 claim), on a noisy dataset.
#[test]
fn parallel_accuracy_tracks_sequential() {
    let ds = p2mdie::datasets::pyrimidines(0.1, 13);
    let folds = stratified_folds(&ds.examples, 3, 13);
    let mut seq_accs = Vec::new();
    let mut par_accs = Vec::new();
    for fold in &folds {
        let seq = run_sequential_timed(&ds.engine, &fold.train, &CostModel::free());
        seq_accs.push(score_theory(&ds.engine, &seq.theory, &fold.test).accuracy_pct());
        let rep = run_parallel(
            &ds.engine,
            &fold.train,
            &ParallelConfig::new(4, Width::Limit(10), 13),
        )
        .unwrap();
        par_accs.push(score_theory(&ds.engine, &rep.clauses(), &fold.test).accuracy_pct());
    }
    let seq_mean = p2mdie::eval::mean(&seq_accs);
    let par_mean = p2mdie::eval::mean(&par_accs);
    assert!(
        (seq_mean - par_mean).abs() < 15.0,
        "accuracy drifted: sequential {seq_mean:.1}% vs parallel {par_mean:.1}%"
    );
}

/// Speedup sanity on a compute-heavy problem: virtual time at p=4 must
/// beat p=1 (the weakest form of the paper's Table 2 claim).
#[test]
fn parallel_virtual_time_beats_sequential() {
    let ds = p2mdie::datasets::carcinogenesis(0.2, 7);
    let model = CostModel::beowulf_2005();
    let seq = run_sequential_timed(&ds.engine, &ds.examples, &model);
    let rep = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig {
            workers: 4,
            width: Width::Limit(10),
            model,
            seed: 7,
            repartition: false,
            ship_kb: false,
            transport: p2mdie::core::TransportKind::InProcess,
            recovery: p2mdie::core::RecoveryPolicy::Abort,
            chaos: Vec::new(),
            strategy: p2mdie::core::Strategy::DataPipeline,
        },
    )
    .unwrap();
    assert!(
        rep.vtime < seq.vtime,
        "T(4) = {:.1}s should beat T(1) = {:.1}s",
        rep.vtime,
        seq.vtime
    );
}

/// The master's virtual clock is the run's makespan: every worker's final
/// clock sits within one message delay of it (workers stop right after the
/// master's final `Stop` broadcast reaches them).
#[test]
fn master_vtime_is_a_valid_makespan() {
    let ds = p2mdie::datasets::family(4, 2);
    let rep = run_parallel(
        &ds.engine,
        &ds.examples,
        &ParallelConfig::new(3, Width::Limit(5), 2),
    )
    .unwrap();
    for (w, t) in rep.worker_vtimes.iter().enumerate() {
        assert!(*t > 0.0, "worker {} did no timed work", w + 1);
        assert!(
            (*t - rep.vtime).abs() < 1e-2,
            "worker {} clock {t} far from master makespan {}",
            w + 1,
            rep.vtime
        );
    }
}
