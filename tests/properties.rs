//! Property-based tests (proptest) over the core data structures and
//! invariants: unification, θ-subsumption, the wire codec, partitioning,
//! bitsets, and the t-test.

use p2mdie::cluster::codec::{from_bytes, to_bytes};
use p2mdie::core::partition::partition_examples;
use p2mdie::core::protocol::Msg;
use p2mdie::ilp::bitset::Bitset;
use p2mdie::ilp::examples::Examples;
use p2mdie::logic::clause::{Clause, Literal};
use p2mdie::logic::subst::Bindings;
use p2mdie::logic::symbol::SymbolTable;
use p2mdie::logic::term::Term;
use p2mdie::logic::theta;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Arbitrary terms over a small vocabulary (functors f/g, constants a..e,
/// ints, variables 0..6), depth-bounded.
fn arb_term() -> impl Strategy<Value = Term> {
    let t = SymbolTable::new();
    let consts: Vec<Term> = ["a", "b", "c", "d", "e"]
        .iter()
        .map(|n| Term::Sym(t.intern(n)))
        .collect();
    let f = t.intern("f");
    let g = t.intern("g");
    let leaf = prop_oneof![
        (0u32..6).prop_map(Term::Var),
        proptest::sample::select(consts),
        (-5i64..5).prop_map(Term::Int),
    ];
    leaf.prop_recursive(3, 24, 3, move |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(move |args| Term::app(f, args)),
            proptest::collection::vec(inner, 1..2).prop_map(move |args| Term::app(g, args)),
        ]
    })
}

/// Arbitrary short clauses over predicates p/1, q/2, r/1.
fn arb_clause() -> impl Strategy<Value = Clause> {
    let t = SymbolTable::new();
    let p = t.intern("p");
    let q = t.intern("q");
    let r = t.intern("r");
    let var = (0u32..4).prop_map(Term::Var);
    let cst = proptest::sample::select(vec![
        Term::Sym(t.intern("a")),
        Term::Sym(t.intern("b")),
        Term::Int(1),
    ]);
    let arg = prop_oneof![var, cst];
    let lit = prop_oneof![
        arg.clone().prop_map(move |a| Literal::new(p, vec![a])),
        (arg.clone(), arg.clone()).prop_map(move |(a, b)| Literal::new(q, vec![a, b])),
        arg.clone().prop_map(move |a| Literal::new(r, vec![a])),
    ];
    (lit.clone(), proptest::collection::vec(lit, 0..4))
        .prop_map(|(head, body)| Clause::new(head, body))
}

// ---------------------------------------------------------------------
// Unification
// ---------------------------------------------------------------------

proptest! {
    /// A successful unifier really unifies: applying the bindings to both
    /// sides yields syntactically equal terms.
    #[test]
    fn unifier_unifies(a in arb_term(), b in arb_term()) {
        let mut bd = Bindings::new();
        if bd.unify(&a, &b, true) {
            prop_assert_eq!(bd.resolve(&a), bd.resolve(&b));
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_is_symmetric(a in arb_term(), b in arb_term()) {
        let mut b1 = Bindings::new();
        let mut b2 = Bindings::new();
        prop_assert_eq!(b1.unify(&a, &b, true), b2.unify(&b, &a, true));
    }

    /// Failed unification leaves no bindings behind.
    #[test]
    fn failed_unification_is_clean(a in arb_term(), b in arb_term()) {
        let mut bd = Bindings::new();
        if !bd.unify(&a, &b, true) {
            for v in 0..8 {
                prop_assert!(bd.lookup(v).is_none());
            }
        }
    }

    /// A term always unifies with itself without creating bindings on
    /// distinct variables... (it may bind nothing at all).
    #[test]
    fn self_unification_succeeds(a in arb_term()) {
        let mut bd = Bindings::new();
        prop_assert!(bd.unify(&a, &a, true));
        prop_assert_eq!(bd.resolve(&a), bd.resolve(&a));
    }
}

// ---------------------------------------------------------------------
// θ-subsumption
// ---------------------------------------------------------------------

proptest! {
    /// Reflexivity: every clause subsumes itself.
    #[test]
    fn subsumption_is_reflexive(c in arb_clause()) {
        prop_assert!(theta::subsumes(&c, &c));
    }

    /// Dropping body literals generalizes: the shorter clause subsumes the
    /// longer one.
    #[test]
    fn literal_dropping_generalizes(c in arb_clause(), k in 0usize..4) {
        prop_assume!(!c.body.is_empty());
        let mut shorter = c.clone();
        shorter.body.remove(k % c.body.len());
        prop_assert!(theta::subsumes(&shorter, &c));
    }

    /// Variants subsume each other.
    #[test]
    fn variants_are_theta_equivalent(c in arb_clause(), off in 1u32..5) {
        let renamed = c.offset_vars(off);
        prop_assert!(theta::variants(&c, &renamed));
        prop_assert!(theta::subsumes(&c, &renamed));
        prop_assert!(theta::subsumes(&renamed, &c));
    }

    /// Plotkin reduction preserves θ-equivalence and never grows.
    #[test]
    fn reduction_preserves_equivalence(c in arb_clause()) {
        let r = theta::reduce(&c);
        prop_assert!(r.body.len() <= c.body.len());
        prop_assert!(theta::subsumes(&r, &c) && theta::subsumes(&c, &r));
    }
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

proptest! {
    /// MarkCovered messages round-trip through the codec for arbitrary
    /// clauses (the hardest payload: nested terms).
    #[test]
    fn codec_roundtrips_clauses(c in arb_clause()) {
        let msg = Msg::MarkCovered { rule: c };
        let bytes = to_bytes(&msg);
        let back: Msg = from_bytes(bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// EvalResult count vectors round-trip exactly.
    #[test]
    fn codec_roundtrips_counts(counts in proptest::collection::vec((0u32..9999, 0u32..9999), 0..64)) {
        let msg = Msg::EvalResult { counts };
        let back: Msg = from_bytes(to_bytes(&msg)).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Decoding arbitrary junk never panics (it may error).
    #[test]
    fn codec_never_panics_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes::<Msg>(bytes::Bytes::from(bytes));
    }
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

proptest! {
    /// Partitioning is a permutation into near-even parts, for any sizes.
    #[test]
    fn partition_permutes_evenly(n_pos in 0usize..60, n_neg in 0usize..60, p in 1usize..9, seed in 0u64..50) {
        let t = SymbolTable::new();
        let pr = t.intern("e");
        let ex = Examples::new(
            (0..n_pos).map(|i| Literal::new(pr, vec![Term::Int(i as i64)])).collect(),
            (0..n_neg).map(|i| Literal::new(pr, vec![Term::Int(-1 - i as i64)])).collect(),
        );
        let (subs, part) = partition_examples(&ex, p, seed);
        let mut all: Vec<usize> = part.pos.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n_pos).collect::<Vec<_>>());
        let sizes: Vec<usize> = subs.iter().map(|s| s.num_pos()).collect();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(mx - mn <= 1, "uneven partition: {:?}", sizes);
    }
}

// ---------------------------------------------------------------------
// Bitsets
// ---------------------------------------------------------------------

proptest! {
    /// De Morgan-ish law: |A| = |A∩B| + |A\B|.
    #[test]
    fn bitset_partition_law(len in 1usize..300,
                            a in proptest::collection::vec(any::<bool>(), 1..300),
                            b in proptest::collection::vec(any::<bool>(), 1..300)) {
        let n = len.min(a.len()).min(b.len());
        let sa = Bitset::from_indices(n, (0..n).filter(|&i| a[i]));
        let sb = Bitset::from_indices(n, (0..n).filter(|&i| b[i]));
        let inter = sa.intersection_count(&sb);
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        prop_assert_eq!(sa.count(), inter + diff.count());
    }

    /// iter_ones is sorted, in range, and matches count().
    #[test]
    fn bitset_iteration_invariants(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let n = bits.len();
        let s = Bitset::from_indices(n, (0..n).filter(|&i| bits[i]));
        let ones: Vec<usize> = s.iter_ones().collect();
        prop_assert_eq!(ones.len(), s.count());
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ones.iter().all(|&i| i < n && s.get(i)));
    }
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

proptest! {
    /// The paired t-test is antisymmetric in its arguments and its p-value
    /// always lies in [0, 1].
    #[test]
    fn ttest_antisymmetry(xs in proptest::collection::vec(0.0f64..100.0, 2..12),
                          ys in proptest::collection::vec(0.0f64..100.0, 2..12)) {
        let n = xs.len().min(ys.len());
        let (a, b) = (&xs[..n], &ys[..n]);
        let fwd = p2mdie::eval::paired_ttest(a, b).unwrap();
        let rev = p2mdie::eval::paired_ttest(b, a).unwrap();
        prop_assert!((0.0..=1.0).contains(&fwd.p_value));
        if fwd.t.is_finite() {
            prop_assert!((fwd.t + rev.t).abs() < 1e-6);
            prop_assert!((fwd.p_value - rev.p_value).abs() < 1e-9);
        }
    }
}
