//! # p2mdie — a pipelined data-parallel algorithm for ILP
//!
//! A from-scratch Rust reproduction of Fonseca, Silva, Santos Costa &
//! Camacho, *"A pipelined data-parallel algorithm for ILP"*, IEEE CLUSTER
//! 2005 — the p²-mdie algorithm plus the entire stack it ran on:
//!
//! | paper component | this workspace |
//! |---|---|
//! | YAP Prolog (deduction) | [`logic`] — terms, unification, θ-subsumption, bounded SLD prover |
//! | April ILP system | [`ilp`] — modes, saturation, refinement, breadth-first search, covering |
//! | LAM/MPI + Beowulf cluster | [`cluster`] — thread-backed message passing with a virtual-time model |
//! | p²-mdie (paper §4) | [`core`] — master/worker protocol, pipelined `learn_rule'`, rule bag |
//! | carcinogenesis / mesh / pyrimidines | [`datasets`] — synthetic generators with Table 1's sizes |
//! | 5-fold CV + paired t-test | [`eval`] — folds, accuracy, t-test, table rendering, sweeps |
//! | (instrumentation) | [`obs`] — flight recorder: virtual-time tracing, metrics registry, exports |
//!
//! ## Quickstart
//!
//! ```
//! use p2mdie::core::driver::{run_parallel, ParallelConfig};
//! use p2mdie::ilp::settings::Width;
//!
//! // A toy family-tree problem: learn daughter/2 on 4 workers.
//! let ds = p2mdie::datasets::family(4, 42);
//! let cfg = ParallelConfig::new(4, Width::Limit(10), 42);
//! let report = run_parallel(&ds.engine, &ds.examples, &cfg).unwrap();
//! assert!(!report.theory.is_empty());
//! println!(
//!     "learned {} rules in {} epochs, T(4) = {:.2} virtual s",
//!     report.theory.len(),
//!     report.epochs,
//!     report.vtime
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/
//! reproduce.rs` for the binary that regenerates every table and figure of
//! the paper.

pub use p2mdie_cluster as cluster;
pub use p2mdie_core as core;
pub use p2mdie_datasets as datasets;
pub use p2mdie_eval as eval;
pub use p2mdie_ilp as ilp;
pub use p2mdie_logic as logic;
pub use p2mdie_obs as obs;
